"""Memory-hierarchy model for the DropBack accelerator analysis.

The paper's core hardware argument (Section 1) compares a 640 pJ off-chip
DRAM access against sub-pJ on-chip operations.  Real accelerators sit
between those extremes: weights that fit in on-chip SRAM cost ~5 pJ, and
only the spill traffic pays the DRAM price.  This module models that
hierarchy so the DropBack claim can be stated precisely: *a tracked set
that fits in SRAM turns all weight traffic on-chip*, which is where the
"train 5-10x larger networks" headline comes from.

Energy figures are 45 nm estimates in the style of Horowitz (ISSCC 2014),
the same source family as the paper's constants.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MemoryLevel", "MemoryHierarchy", "REGISTER", "SRAM_64KB", "SRAM_1MB", "DRAM"]


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the memory hierarchy.

    Parameters
    ----------
    name:
        Human-readable label.
    capacity_bytes:
        Capacity; ``None`` for effectively unbounded (DRAM).
    pj_per_access:
        Energy per 32-bit access.
    """

    name: str
    capacity_bytes: int | None
    pj_per_access: float

    def holds(self, nbytes: int) -> bool:
        """Whether ``nbytes`` fits at this level."""
        return self.capacity_bytes is None or nbytes <= self.capacity_bytes


#: 45 nm ballpark figures (Horowitz 2014 / Han et al. 2016).
REGISTER = MemoryLevel("register", 1 * 1024, 0.1)
SRAM_64KB = MemoryLevel("sram-64KB", 64 * 1024, 5.0)
SRAM_1MB = MemoryLevel("sram-1MB", 1024 * 1024, 20.0)
DRAM = MemoryLevel("dram", None, 640.0)


class MemoryHierarchy:
    """An ordered list of levels; data lands in the smallest level it fits.

    Parameters
    ----------
    levels:
        Levels ordered from smallest/cheapest to largest/most expensive.
        The last level must be unbounded.
    """

    def __init__(self, levels: list[MemoryLevel] | None = None):
        self.levels = levels or [SRAM_64KB, SRAM_1MB, DRAM]
        if self.levels[-1].capacity_bytes is not None:
            raise ValueError("last level must be unbounded (the spill target)")
        for a, b in zip(self.levels, self.levels[1:]):
            if a.capacity_bytes is not None and b.capacity_bytes is not None:
                if a.capacity_bytes > b.capacity_bytes:
                    raise ValueError("levels must be ordered smallest to largest")

    def placement(self, nbytes: int) -> MemoryLevel:
        """The level a working set of ``nbytes`` resides in."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        for level in self.levels:
            if level.holds(nbytes):
                return level
        return self.levels[-1]

    def access_energy_pj(self, nbytes_resident: int, accesses: int) -> float:
        """Energy for ``accesses`` 32-bit reads/writes of a resident set."""
        return self.placement(nbytes_resident).pj_per_access * accesses

    def largest_fitting_on_chip(self) -> int:
        """Capacity of the biggest bounded (on-chip) level, in bytes."""
        bounded = [l.capacity_bytes for l in self.levels if l.capacity_bytes is not None]
        if not bounded:
            raise ValueError("hierarchy has no on-chip level")
        return max(bounded)
