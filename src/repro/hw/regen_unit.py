"""Model of the hardware xorshift regeneration unit.

Paper Section 2.1: regenerating one normally distributed initialization
value takes six 32-bit integer operations and one floating-point operation
(~1.5 pJ at 45 nm).  A hardware unit pipelines this: with the xorshift
rounds unrolled it produces one value per cycle per lane.

:class:`RegenerationUnit` turns a regeneration demand (values per training
step) into energy, latency, and area-free throughput numbers the
accelerator model composes with memory traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.init import REGEN_FLOAT_OPS, REGEN_INT_OPS

__all__ = ["RegenerationUnit"]


@dataclass(frozen=True)
class RegenerationUnit:
    """A pipelined multi-lane regeneration unit.

    Parameters
    ----------
    lanes:
        Parallel generation lanes (values per cycle at steady state).
    clock_ghz:
        Operating frequency.
    pj_int_op, pj_float_op:
        Per-operation energies (45 nm defaults).
    """

    lanes: int = 4
    clock_ghz: float = 1.0
    pj_int_op: float = 0.1
    pj_float_op: float = 0.9

    def __post_init__(self):
        if self.lanes < 1:
            raise ValueError(f"lanes must be >= 1, got {self.lanes}")
        if self.clock_ghz <= 0:
            raise ValueError(f"clock must be positive, got {self.clock_ghz}")

    @property
    def pj_per_value(self) -> float:
        """Energy to regenerate one value (6 int + 1 float op)."""
        return REGEN_INT_OPS * self.pj_int_op + REGEN_FLOAT_OPS * self.pj_float_op

    def energy_pj(self, n_values: int) -> float:
        """Energy to regenerate ``n_values`` values."""
        if n_values < 0:
            raise ValueError("n_values must be non-negative")
        return n_values * self.pj_per_value

    def latency_us(self, n_values: int) -> float:
        """Steady-state latency to stream out ``n_values`` values."""
        if n_values < 0:
            raise ValueError("n_values must be non-negative")
        cycles = n_values / self.lanes
        return cycles / (self.clock_ghz * 1e3)  # GHz -> values/us per lane

    def values_per_second(self) -> float:
        """Peak regeneration throughput."""
        return self.lanes * self.clock_ghz * 1e9
