"""DropBack — the paper's primary contribution."""

from repro.core.dropback import DropBack
from repro.core.selection import HeapSelector, Selector, SortSelector, top_k_mask
from repro.core.variants import UniformBudgetDropBack

__all__ = [
    "DropBack",
    "UniformBudgetDropBack",
    "Selector",
    "SortSelector",
    "HeapSelector",
    "top_k_mask",
]
