"""The DropBack optimizer: continuous pruning during training.

Implements Algorithm 1 of the paper.  At every step:

1. compute the SGD update candidate ``W' = W_{t-1} - lr * g`` for every
   parameter;
2. score each weight by its **accumulated gradient magnitude**.  Because an
   untracked weight always sits at its initial value, the accumulated
   gradient is simply ``|W' - W(0)|`` — "the tracked set T requires no
   storage: its elements are recomputed when needed from W_{t-1} - W(0)";
3. keep the ``k`` highest-scoring weights (the *tracked set*) at their
   updated values, and reset every other weight to its initialization
   value, regenerated from the network seed via xorshift;
4. once :meth:`freeze` has been called (after a few epochs, per the paper),
   the tracked set stops changing and untracked gradients are ignored.

Only ``k`` weights are ever stored; the weight-memory compression ratio is
``total_params / k`` (the paper's "weight compression" column).

The class also exposes the instrumentation the paper's analysis needs:
per-step tracked-set churn (Fig. 2), per-layer retention counts (Table 2),
and memory-access counters for the energy model (Section 1).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.selection import Selector, SortSelector
from repro.nn import Module, Parameter
from repro.optim.base import Optimizer
from repro.profile import profiled

__all__ = ["DropBack"]

Criterion = Literal["accumulated", "magnitude", "current"]


class DropBack(Optimizer):
    """DropBack training: constrain updates to a budget of ``k`` weights.

    Parameters
    ----------
    model:
        Finalized model (so each parameter has a seed/index identity).
    k:
        Tracked-weight budget (e.g. 50_000, 20_000, 1_500 in Table 1).
    lr:
        Learning rate (the paper uses 0.4 with step decay).
    criterion:
        Weight-importance score used for selection:

        * ``"accumulated"`` — accumulated gradient ``|W' - W(0)|``
          (the DropBack criterion);
        * ``"magnitude"`` — ``|W'|``, the naive alternative the paper
          argues against (ablation);
        * ``"current"`` — current-step gradient ``|lr * g|`` (ablation).
    zero_untracked:
        Ablation switch: set untracked weights to 0 instead of regenerating
        W(0).  The paper reports this costs 60x -> 2x achievable
        compression on MNIST.
    selector:
        Top-k strategy; defaults to exact :class:`SortSelector`.
    strict_regeneration:
        If True, untracked values are *recomputed from the xorshift PRNG on
        every step* rather than read from a cached W(0) array — the
        faithful hardware behaviour.  Slower; used in tests to prove the
        cached path is exactly equivalent.
    include_nonprunable:
        If False, parameters flagged ``prunable=False`` get plain SGD
        updates and do not consume budget.  Default True (the paper prunes
        everything, including BatchNorm and PReLU parameters).
    """

    def __init__(
        self,
        model: Module,
        k: int,
        lr: float,
        criterion: Criterion = "accumulated",
        zero_untracked: bool = False,
        selector: Selector | None = None,
        strict_regeneration: bool = False,
        include_nonprunable: bool = True,
    ):
        super().__init__(model, lr)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if criterion not in ("accumulated", "magnitude", "current"):
            raise ValueError(f"unknown criterion: {criterion!r}")
        self.k = int(k)
        self.criterion: Criterion = criterion
        self.zero_untracked = bool(zero_untracked)
        self.selector = selector or SortSelector()
        self.strict_regeneration = bool(strict_regeneration)

        self._named: list[tuple[str, Parameter]] = list(model.named_parameters())
        self._prunable = [
            (name, p)
            for name, p in self._named
            if p.prunable or include_nonprunable
        ]
        self._fixed = [p for _, p in self._named if not (p.prunable or include_nonprunable)]
        self._sizes = [p.size for _, p in self._prunable]
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes)]).astype(np.int64)
        self.total_prunable = int(self._offsets[-1])

        seed = model.seed
        self._w0 = [p.initial_values(seed) for _, p in self._prunable]
        self._reference = [np.zeros_like(w0) if zero_untracked else w0 for w0 in self._w0]

        self.frozen = False
        self._mask_flat: np.ndarray | None = None  # tracked-set mask (flat, prunable space)
        self.last_swaps: int = 0  # weights that entered the tracked set this step
        self.swap_history: list[int] = []

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def compression_ratio(self) -> float:
        """Weight compression vs. the dense model, ``total / k``."""
        return self.num_parameters / float(self.k)

    def storage_floats(self) -> int:
        """Persistent weight storage: only the k tracked values."""
        return min(self.k, self.total_prunable) + sum(p.size for p in self._fixed)

    @property
    def tracked_mask(self) -> np.ndarray | None:
        """Copy of the current flat tracked-set mask (None before step 1)."""
        return None if self._mask_flat is None else self._mask_flat.copy()

    # ------------------------------------------------------------------ #
    # freeze
    # ------------------------------------------------------------------ #

    def freeze(self) -> None:
        """Freeze the tracked set (paper: after a few epochs).

        Subsequent steps only update weights already tracked; untracked
        gradients are no longer scored, saving the associated accesses.
        """
        if self._mask_flat is None:
            raise RuntimeError("cannot freeze before the first step")
        self.frozen = True

    def unfreeze(self) -> None:
        """Resume tracked-set re-selection (for experiments)."""
        self.frozen = False

    # ------------------------------------------------------------------ #
    # step
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """One DropBack update (Algorithm 1)."""
        reference = self._reference
        if self.strict_regeneration:
            with profiled("dropback.regenerate"):
                seed = self.model.seed
                w0 = [
                    p.initializer.regenerate(seed, p.base_index, p.shape)
                    for _, p in self._prunable
                ]
                reference = [np.zeros_like(v) if self.zero_untracked else v for v in w0]

        # 1. SGD candidates for every prunable parameter (the accumulated-
        # gradient update each weight *would* take).
        with profiled("dropback.accumulate"):
            candidates = []
            for (_, p), ref in zip(self._prunable, reference):
                if p.grad is None:
                    candidates.append(p.data.copy())
                else:
                    candidates.append(p.data - self.lr * p.grad)

        # 2-3. Score and select the tracked set.
        if self.frozen:
            mask_flat = self._mask_flat
        else:
            with profiled("dropback.topk"):
                scores = np.empty(self.total_prunable, dtype=np.float64)
                for (lo, hi), cand, ref_p, (_, p) in zip(
                    zip(self._offsets[:-1], self._offsets[1:]),
                    candidates,
                    reference,
                    self._prunable,
                ):
                    if self.criterion == "accumulated":
                        # Accumulated gradient = total applied update = distance
                        # from the value untracked weights reset to (W(0), or 0
                        # in the zeroing ablation — where this degenerates to
                        # magnitude selection, cf. paper Section 2.1).
                        s = np.abs(cand - ref_p)
                    elif self.criterion == "magnitude":
                        s = np.abs(cand)
                    else:  # current-step gradient
                        s = (
                            np.abs(self.lr * p.grad)
                            if p.grad is not None
                            else np.zeros_like(cand)
                        )
                    scores[lo:hi] = s.reshape(-1)
                mask_flat = self.selector.select(scores, self.k)
            if self._mask_flat is not None:
                self.last_swaps = int(np.count_nonzero(mask_flat & ~self._mask_flat))
            else:
                self.last_swaps = int(np.count_nonzero(mask_flat))
            self.swap_history.append(self.last_swaps)
            self._mask_flat = mask_flat

        # 4. Commit: tracked weights take the update, the rest regenerate.
        with profiled("dropback.regenerate"):
            for (lo, hi), cand, ref, (_, p) in zip(
                zip(self._offsets[:-1], self._offsets[1:]), candidates, reference, self._prunable
            ):
                m = mask_flat[lo:hi].reshape(p.shape)
                p.data = np.where(m, cand, ref).astype(p.data.dtype)

            # Non-prunable parameters (only with include_nonprunable=False).
            for p in self._fixed:
                if p.grad is not None:
                    p.data = p.data - self.lr * p.grad

        # Access accounting: k tracked weights are read and written; every
        # untracked weight is regenerated on-chip instead of fetched.
        n_tracked = int(min(self.k, self.total_prunable))
        fixed = sum(p.size for p in self._fixed)
        self.counter.weight_reads += n_tracked + fixed
        self.counter.weight_writes += n_tracked + fixed
        self.counter.regenerations += self.total_prunable - n_tracked
        self.counter.steps += 1

    # ------------------------------------------------------------------ #
    # instrumentation
    # ------------------------------------------------------------------ #

    def tracked_counts(self) -> dict[str, int]:
        """Tracked weights per parameter (Table 2's per-layer retention)."""
        if self._mask_flat is None:
            raise RuntimeError("no tracked set yet; take at least one step")
        out: dict[str, int] = {}
        for (lo, hi), (name, _) in zip(
            zip(self._offsets[:-1], self._offsets[1:]), self._prunable
        ):
            out[name] = int(np.count_nonzero(self._mask_flat[lo:hi]))
        return out

    def tracked_counts_by_layer(self) -> dict[str, int]:
        """Tracked weights aggregated by layer (drop the parameter leaf name)."""
        agg: dict[str, int] = {}
        for name, count in self.tracked_counts().items():
            layer = name.rsplit(".", 1)[0] if "." in name else name
            agg[layer] = agg.get(layer, 0) + count
        return agg

    def untracked_values_match_init(self) -> bool:
        """Invariant check: every untracked weight equals its regenerated init.

        Used by the test suite and available as a runtime assertion hook.
        """
        if self._mask_flat is None:
            return True
        seed = self.model.seed
        for (lo, hi), (_, p) in zip(
            zip(self._offsets[:-1], self._offsets[1:]), self._prunable
        ):
            m = self._mask_flat[lo:hi].reshape(p.shape)
            expect = (
                np.zeros_like(p.data)
                if self.zero_untracked
                else p.initializer.regenerate(seed, p.base_index, p.shape)
            )
            if not np.array_equal(p.data[~m], expect[~m]):
                return False
        return True
