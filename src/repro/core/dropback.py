"""The DropBack optimizer: continuous pruning during training.

Implements Algorithm 1 of the paper.  At every step:

1. compute the SGD update candidate ``W' = W_{t-1} - lr * g`` for every
   parameter;
2. score each weight by its **accumulated gradient magnitude**.  Because an
   untracked weight always sits at its initial value, the accumulated
   gradient is simply ``|W' - W(0)|`` — "the tracked set T requires no
   storage: its elements are recomputed when needed from W_{t-1} - W(0)";
3. keep the ``k`` highest-scoring weights (the *tracked set*) at their
   updated values, and reset every other weight to its initialization
   value, regenerated from the network seed via xorshift;
4. once :meth:`freeze` has been called (after a few epochs, per the paper),
   the tracked set stops changing and untracked gradients are ignored.

Only ``k`` weights are ever stored; the weight-memory compression ratio is
``total_params / k`` (the paper's "weight compression" column).

Implementation
--------------
The optimizer runs on the **flat weight plane** built by
``Module.finalize``: prunable parameters are one contiguous float32 buffer,
so candidates, scores, and the commit are a handful of whole-plane
vectorized ops against scratch buffers preallocated in ``__init__`` — no
per-parameter Python loop over array ops, and no per-step allocation after
warmup.  :meth:`freeze` precomputes the tracked index array plus per-layer
gather/scatter slices, after which each step touches **only the k tracked
entries** (O(k) gather → update → scatter, timed as
``dropback.step.frozen``) instead of O(total_params).

The seed per-parameter implementation is retained verbatim as
:meth:`reference_step`; the equivalence suite proves both paths bit-identical
across every criterion / ``zero_untracked`` / ``strict_regeneration`` /
freeze combination.

The class also exposes the instrumentation the paper's analysis needs:
per-step tracked-set churn (Fig. 2), per-layer retention counts (Table 2),
and memory-access counters for the energy model (Section 1).
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.core.selection import Selector, SortSelector
from repro.nn import Module, Parameter
from repro.optim.base import Optimizer
from repro.profile import profiled
from repro.tensor.kernels import sparse as sparse_kernels

__all__ = ["DropBack"]

Criterion = Literal["accumulated", "magnitude", "current"]


class DropBack(Optimizer):
    """DropBack training: constrain updates to a budget of ``k`` weights.

    Parameters
    ----------
    model:
        Finalized model (so each parameter has a seed/index identity).
    k:
        Tracked-weight budget (e.g. 50_000, 20_000, 1_500 in Table 1).
    lr:
        Learning rate (the paper uses 0.4 with step decay).
    criterion:
        Weight-importance score used for selection:

        * ``"accumulated"`` — accumulated gradient ``|W' - W(0)|``
          (the DropBack criterion);
        * ``"magnitude"`` — ``|W'|``, the naive alternative the paper
          argues against (ablation);
        * ``"current"`` — current-step gradient ``|lr * g|`` (ablation).
    zero_untracked:
        Ablation switch: set untracked weights to 0 instead of regenerating
        W(0).  The paper reports this costs 60x -> 2x achievable
        compression on MNIST.
    selector:
        Top-k strategy; defaults to exact :class:`SortSelector`.
    strict_regeneration:
        If True, untracked values are *recomputed from the xorshift PRNG on
        every step* rather than read from a cached W(0) array — the
        faithful hardware behaviour.  Slower; used in tests to prove the
        cached path is exactly equivalent.
    include_nonprunable:
        If False, parameters flagged ``prunable=False`` get plain SGD
        updates and do not consume budget.  Default True (the paper prunes
        everything, including BatchNorm and PReLU parameters).
    history_limit:
        Bound on the length of :attr:`swap_history`.  ``None`` (default)
        keeps every per-step churn count, the behaviour the Fig. 2
        benchmarks rely on; a positive limit keeps only the most recent
        entries so multi-million-step runs stay O(limit) in memory.
        :attr:`total_swaps` always accumulates the running total.
    """

    def __init__(
        self,
        model: Module,
        k: int,
        lr: float,
        criterion: Criterion = "accumulated",
        zero_untracked: bool = False,
        selector: Selector | None = None,
        strict_regeneration: bool = False,
        include_nonprunable: bool = True,
        history_limit: int | None = None,
    ):
        super().__init__(model, lr)
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if criterion not in ("accumulated", "magnitude", "current"):
            raise ValueError(f"unknown criterion: {criterion!r}")
        if history_limit is not None and history_limit <= 0:
            raise ValueError(f"history_limit must be positive or None, got {history_limit}")
        self.k = int(k)
        self.criterion: Criterion = criterion
        self.zero_untracked = bool(zero_untracked)
        self.selector = selector or SortSelector()
        self.strict_regeneration = bool(strict_regeneration)
        self.history_limit = history_limit

        self._named: list[tuple[str, Parameter]] = list(model.named_parameters())
        self._prunable = [
            (name, p)
            for name, p in self._named
            if p.prunable or include_nonprunable
        ]
        self._fixed = [p for _, p in self._named if not (p.prunable or include_nonprunable)]
        self._sizes = [p.size for _, p in self._prunable]
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes)]).astype(np.int64)
        self.total_prunable = int(self._offsets[-1])
        self._spans = list(zip(self._offsets[:-1], self._offsets[1:]))

        seed = model.seed
        n = self.total_prunable

        # W(0) and the reset reference live as flat buffers; the per-param
        # lists (`_w0`, `_reference`) are reshaped views into them, kept
        # for subclasses (QAT) and the reference step.
        self._w0_flat = np.empty(n, dtype=np.float32)
        for (lo, hi), (_, p) in zip(self._spans, self._prunable):
            self._w0_flat[lo:hi].reshape(p.shape)[...] = p.initial_values(seed)
        self._ref_flat = np.zeros(n, dtype=np.float32) if zero_untracked else self._w0_flat
        self._w0 = [self._w0_flat[lo:hi].reshape(p.shape)
                    for (lo, hi), (_, p) in zip(self._spans, self._prunable)]
        self._reference = [self._ref_flat[lo:hi].reshape(p.shape)
                           for (lo, hi), (_, p) in zip(self._spans, self._prunable)]

        # Whole-plane scratch (allocated once; the hot step never allocates).
        self._g_flat = np.zeros(n, dtype=np.float32)  # gathered gradients
        self._cand_flat = np.empty(n, dtype=np.float32)  # SGD candidates W'
        self._score32 = np.empty(n, dtype=np.float32)  # criterion, pre-upcast
        self._scores = np.empty(n, dtype=np.float64)  # selector input
        self._w_scratch: np.ndarray | None = None  # gather target (indirect mode)
        self._regen_flat: np.ndarray | None = None  # strict-regeneration scratch
        self._mask_scratch = np.empty(n, dtype=bool)  # selector output buffer
        self._mask_store = np.empty(n, dtype=bool)  # committed tracked set
        self._swap_scratch = np.empty(n, dtype=bool)  # churn = mask & ~prev

        # Direct mode: when the prunable parameters are a contiguous run of
        # the model's weight plane, candidates/commits read and write the
        # plane itself (zero gather/scatter).  Verified per step by cheap
        # identity checks so external rebinding of a parameter's array
        # degrades to the gather/scatter path instead of corrupting state.
        self._views = [p.data for _, p in self._prunable]
        self._plane_slice = self._resolve_plane_slice()

        self.frozen = False
        self._mask_flat: np.ndarray | None = None  # tracked-set mask (flat, prunable space)
        self.last_swaps: int = 0  # weights that entered the tracked set this step
        self.swap_history: list[int] = []
        self.total_swaps: int = 0  # running churn total (survives history_limit)

        # Frozen-path index machinery, built by freeze().
        self._tracked_idx: np.ndarray | None = None
        self._frozen_segs: list[tuple[Parameter, int, int, np.ndarray]] = []
        self._g_k: np.ndarray | None = None
        self._w_k: np.ndarray | None = None
        # Packed-weight keys registered with the sparse kernel backend
        # while frozen (zero_untracked only); see _register_sparse_packs.
        self._sparse_keys: list = []

    def _resolve_plane_slice(self) -> np.ndarray | None:
        """The plane sub-view covering all prunable params, if contiguous."""
        plane = self.model.weight_plane
        if plane is None or not self._prunable:
            return None
        base0 = self._prunable[0][1].base_index
        for (lo, _), (_, p) in zip(self._spans, self._prunable):
            if not p.plane_backed or p.base_index != base0 + lo:
                return None
        return plane[base0 : base0 + self.total_prunable]

    def _direct(self) -> bool:
        """True when every prunable param still aliases its plane view."""
        return self._plane_slice is not None and all(
            p.data is v for (_, p), v in zip(self._prunable, self._views)
        )

    def rebind_plane(self) -> None:
        """Re-resolve the cached plane views after an ``adopt_plane``.

        The data-parallel trainer re-homes the model's weight plane into
        (and later out of) a shared-memory arena; without this refresh the
        per-step identity checks in :meth:`_direct` would see stale views
        and silently degrade every step to the gather/scatter path.
        """
        self._views = [p.data for _, p in self._prunable]
        self._plane_slice = self._resolve_plane_slice()
        if self.frozen and self._tracked_idx is not None:
            self._register_sparse_packs()
        else:
            self._invalidate_sparse_packs()

    # ------------------------------------------------------------------ #
    # properties
    # ------------------------------------------------------------------ #

    @property
    def compression_ratio(self) -> float:
        """Weight compression vs. the dense model, ``total / k``."""
        return self.num_parameters / float(self.k)

    def storage_floats(self) -> int:
        """Persistent weight storage: only the k tracked values."""
        return min(self.k, self.total_prunable) + sum(p.size for p in self._fixed)

    @property
    def tracked_mask(self) -> np.ndarray | None:
        """Copy of the current flat tracked-set mask (None before step 1)."""
        return None if self._mask_flat is None else self._mask_flat.copy()

    # ------------------------------------------------------------------ #
    # freeze
    # ------------------------------------------------------------------ #

    def freeze(self) -> None:
        """Freeze the tracked set (paper: after a few epochs).

        Subsequent steps only update weights already tracked; untracked
        gradients are no longer scored, saving the associated accesses.
        Freezing precomputes the sorted tracked index array and, per
        parameter, the gather/scatter slice into it, so every frozen step
        is O(k) work touching only the tracked entries.
        """
        if self._mask_flat is None:
            raise RuntimeError("cannot freeze before the first step")
        self.frozen = True
        idx = np.flatnonzero(self._mask_flat)
        self._tracked_idx = idx
        self._g_k = np.empty(idx.size, dtype=np.float32)
        self._w_k = np.empty(idx.size, dtype=np.float32)
        bounds = np.searchsorted(idx, self._offsets)
        self._frozen_segs = []
        for i, ((lo, _), (_, p)) in enumerate(zip(self._spans, self._prunable)):
            s, e = int(bounds[i]), int(bounds[i + 1])
            if s < e:
                self._frozen_segs.append((p, s, e, idx[s:e] - lo))
        self._register_sparse_packs()

    def unfreeze(self) -> None:
        """Resume tracked-set re-selection (for experiments)."""
        self.frozen = False
        self._tracked_idx = None
        self._frozen_segs = []
        self._g_k = None
        self._w_k = None
        self._invalidate_sparse_packs()

    def _register_sparse_packs(self) -> None:
        """Pack the frozen tracked set for the ``sparse`` kernel backend.

        Only meaningful in ``zero_untracked`` mode, where the plane really
        is k-sparse (otherwise untracked weights sit at W(0), dense).  The
        pack's CSR structure *is* the frozen tracked set, so it survives
        every frozen step; the kernel re-gathers tracked values per call.
        Packs are inert until the ``sparse`` backend is selected for
        dispatch (``REPRO_BACKEND=sparse`` or a matmul/conv op pin).
        """
        self._invalidate_sparse_packs()
        if not (self.zero_untracked and sparse_kernels.is_available()):
            return
        idx = self._tracked_idx
        cutoff = sparse_kernels.density_cutoff()
        bounds = np.searchsorted(idx, self._offsets)
        for i, ((lo, _), (_, p)) in enumerate(zip(self._spans, self._prunable)):
            if p.data.ndim not in (2, 4) or not p.plane_backed:
                continue
            s, e = int(bounds[i]), int(bounds[i + 1])
            if (e - s) / p.size > cutoff:
                continue
            self._sparse_keys.extend(sparse_kernels.register_weight(p.data, idx[s:e] - lo))

    def _invalidate_sparse_packs(self) -> None:
        """Drop registered packs (tracked-set change or plane re-home)."""
        if self._sparse_keys:
            sparse_kernels.invalidate(self._sparse_keys)
            self._sparse_keys = []

    # ------------------------------------------------------------------ #
    # step — vectorized flat-plane implementation
    # ------------------------------------------------------------------ #

    def step(self) -> None:
        """One DropBack update (Algorithm 1), on the flat weight plane."""
        with profiled("dropback.step"):
            if self.frozen:
                with profiled("dropback.step.frozen"):
                    self._frozen_step()
            else:
                self._unfrozen_step()
            self._sgd_fixed()
            self._count_accesses()

    def _unfrozen_step(self) -> None:
        lr = self.lr
        direct = self._direct()

        # 1. SGD candidates W' = W - lr*g as two whole-plane ops.
        with profiled("dropback.accumulate"):
            for (lo, hi), (_, p) in zip(self._spans, self._prunable):
                gseg = self._g_flat[lo:hi]
                if p.grad is None:
                    gseg.fill(0.0)
                else:
                    np.copyto(gseg.reshape(p.shape), p.grad)
            if direct:
                w = self._plane_slice
            else:
                if self._w_scratch is None:
                    self._w_scratch = np.empty(self.total_prunable, dtype=np.float32)
                w = self._w_scratch
                for (lo, hi), (_, p) in zip(self._spans, self._prunable):
                    np.copyto(w[lo:hi].reshape(p.shape), p.data)
            np.multiply(self._g_flat, lr, out=self._cand_flat)
            np.subtract(w, self._cand_flat, out=self._cand_flat)

        reference = self._ref_flat
        if self.strict_regeneration:
            with profiled("dropback.regenerate"):
                reference = self._regenerate_strict()

        # 2-3. Score and select the tracked set.
        with profiled("dropback.topk"):
            s32 = self._score32
            if self.criterion == "accumulated":
                # Accumulated gradient = total applied update = distance
                # from the value untracked weights reset to (W(0), or 0 in
                # the zeroing ablation — where this degenerates to
                # magnitude selection, cf. paper Section 2.1).
                np.subtract(self._cand_flat, reference, out=s32)
                np.abs(s32, out=s32)
            elif self.criterion == "magnitude":
                np.abs(self._cand_flat, out=s32)
            else:  # current-step gradient
                np.multiply(self._g_flat, lr, out=s32)
                np.abs(s32, out=s32)
            self._scores[...] = s32
            mask = self._select(self._scores)
        self._record_selection(mask)
        mask = self._mask_flat

        # 4. Commit: tracked weights take the update, the rest regenerate.
        with profiled("dropback.regenerate"):
            np.copyto(w, reference)
            np.copyto(w, self._cand_flat, where=mask)
            if not direct:
                for (lo, hi), (_, p) in zip(self._spans, self._prunable):
                    np.copyto(p.data, w[lo:hi].reshape(p.shape))

    def _frozen_step(self) -> None:
        """O(k) frozen update: gather tracked grads, update, scatter back."""
        gk, wk = self._g_k, self._w_k
        for p, s, e, li in self._frozen_segs:
            if p.grad is None:
                gk[s:e] = 0.0
            else:
                np.take(p.grad, li, out=gk[s:e])
        np.multiply(gk, self.lr, out=gk)
        if self._direct():
            plane = self._plane_slice
            np.take(plane, self._tracked_idx, out=wk)
            np.subtract(wk, gk, out=wk)
            plane[self._tracked_idx] = wk
        else:
            for p, s, e, li in self._frozen_segs:
                np.take(p.data, li, out=wk[s:e])
            np.subtract(wk, gk, out=wk)
            for p, s, e, li in self._frozen_segs:
                np.put(p.data, li, wk[s:e])
        if self._sparse_keys:
            sparse_kernels.mark_dirty(self._sparse_keys)

    def _select(self, scores: np.ndarray) -> np.ndarray:
        """Run the selector, reusing the mask scratch buffer when it can."""
        select_into = getattr(self.selector, "select_into", None)
        if select_into is not None:
            return select_into(scores, self.k, out=self._mask_scratch)
        return self.selector.select(scores, self.k)

    def _record_selection(self, mask: np.ndarray) -> None:
        """Fold a fresh tracked-set mask into churn stats and commit it."""
        if self._mask_flat is not None:
            # mask & ~prev == mask > prev for booleans, allocation-free.
            np.greater(mask, self._mask_flat, out=self._swap_scratch)
            self.last_swaps = int(np.count_nonzero(self._swap_scratch))
        else:
            self.last_swaps = int(np.count_nonzero(mask))
        self.total_swaps += self.last_swaps
        self.swap_history.append(self.last_swaps)
        if self.history_limit is not None and len(self.swap_history) > self.history_limit:
            del self.swap_history[: len(self.swap_history) - self.history_limit]
        np.copyto(self._mask_store, mask)
        self._mask_flat = self._mask_store

    def _regenerate_strict(self) -> np.ndarray:
        """Recompute the reset reference from the PRNG (faithful hardware)."""
        if self._regen_flat is None:
            self._regen_flat = np.empty(self.total_prunable, dtype=np.float32)
        seed = self.model.seed
        for (lo, hi), (_, p) in zip(self._spans, self._prunable):
            self._regen_flat[lo:hi].reshape(p.shape)[...] = p.initializer.regenerate(
                seed, p.base_index, p.shape
            )
        if self.zero_untracked:
            self._regen_flat.fill(0.0)
        return self._regen_flat

    def _sgd_fixed(self) -> None:
        """Plain SGD for non-prunable parameters (include_nonprunable=False)."""
        for p in self._fixed:
            if p.grad is not None:
                p.data = p.data - self.lr * p.grad

    def _count_accesses(self) -> None:
        # Access accounting: k tracked weights are read and written; every
        # untracked weight is regenerated on-chip instead of fetched.
        n_tracked = int(min(self.k, self.total_prunable))
        fixed = sum(p.size for p in self._fixed)
        self.counter.weight_reads += n_tracked + fixed
        self.counter.weight_writes += n_tracked + fixed
        self.counter.regenerations += self.total_prunable - n_tracked
        self.counter.steps += 1

    # ------------------------------------------------------------------ #
    # reference step — the seed per-parameter implementation, retained
    # ------------------------------------------------------------------ #

    def reference_step(self) -> None:
        """One DropBack update via the original per-parameter dense path.

        O(total_params) with per-parameter candidate copies and a dense
        ``np.where`` commit — kept verbatim as the semantic reference the
        equivalence suite checks :meth:`step` against, and as the dense
        baseline the perf microbenches measure the flat-plane speedup
        over.  Fully interchangeable with :meth:`step` (shared mask,
        churn, and counter bookkeeping).
        """
        with profiled("dropback.reference_step"):
            self._reference_step_impl()
            self._count_accesses()

    def _reference_step_impl(self) -> None:
        reference = self._reference
        if self.strict_regeneration:
            seed = self.model.seed
            w0 = [
                p.initializer.regenerate(seed, p.base_index, p.shape)
                for _, p in self._prunable
            ]
            reference = [np.zeros_like(v) if self.zero_untracked else v for v in w0]

        # 1. SGD candidates for every prunable parameter (the accumulated-
        # gradient update each weight *would* take).
        candidates = []
        for (_, p), ref in zip(self._prunable, reference):
            if p.grad is None:
                candidates.append(p.data.copy())
            else:
                candidates.append(p.data - self.lr * p.grad)

        # 2-3. Score and select the tracked set.
        if self.frozen:
            mask_flat = self._mask_flat
        else:
            scores = np.empty(self.total_prunable, dtype=np.float64)
            for (lo, hi), cand, ref_p, (_, p) in zip(
                self._spans, candidates, reference, self._prunable
            ):
                if self.criterion == "accumulated":
                    s = np.abs(cand - ref_p)
                elif self.criterion == "magnitude":
                    s = np.abs(cand)
                else:  # current-step gradient
                    s = (
                        np.abs(self.lr * p.grad)
                        if p.grad is not None
                        else np.zeros_like(cand)
                    )
                scores[lo:hi] = s.reshape(-1)
            mask_flat = self.selector.select(scores, self.k)
            self._record_selection(mask_flat)
            mask_flat = self._mask_flat

        # 4. Commit: tracked weights take the update, the rest regenerate.
        for (lo, hi), cand, ref, (_, p) in zip(
            self._spans, candidates, reference, self._prunable
        ):
            m = mask_flat[lo:hi].reshape(p.shape)
            p.data = np.where(m, cand, ref).astype(p.data.dtype)

        self._sgd_fixed()

    # ------------------------------------------------------------------ #
    # instrumentation
    # ------------------------------------------------------------------ #

    def tracked_counts(self) -> dict[str, int]:
        """Tracked weights per parameter (Table 2's per-layer retention)."""
        if self._mask_flat is None:
            raise RuntimeError("no tracked set yet; take at least one step")
        out: dict[str, int] = {}
        for (lo, hi), (name, _) in zip(self._spans, self._prunable):
            out[name] = int(np.count_nonzero(self._mask_flat[lo:hi]))
        return out

    def tracked_counts_by_layer(self) -> dict[str, int]:
        """Tracked weights aggregated by layer (drop the parameter leaf name)."""
        agg: dict[str, int] = {}
        for name, count in self.tracked_counts().items():
            layer = name.rsplit(".", 1)[0] if "." in name else name
            agg[layer] = agg.get(layer, 0) + count
        return agg

    def untracked_values_match_init(self) -> bool:
        """Invariant check: every untracked weight equals its regenerated init.

        Used by the test suite and available as a runtime assertion hook.
        """
        if self._mask_flat is None:
            return True
        seed = self.model.seed
        for (lo, hi), (_, p) in zip(self._spans, self._prunable):
            m = self._mask_flat[lo:hi].reshape(p.shape)
            expect = (
                np.zeros_like(p.data)
                if self.zero_untracked
                else p.initializer.regenerate(seed, p.base_index, p.shape)
            )
            if not np.array_equal(p.data[~m], expect[~m]):
                return False
        return True
