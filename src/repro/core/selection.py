"""Top-k selection strategies for the tracked-weight set.

Algorithm 1 in the paper sorts all accumulated gradients and keeps the top
``k`` ("for clarity of exposition"); the practical implementation it
describes instead maintains "a priority queue of size k, with incoming
gradients higher than the stored minimum evicting the minimum elements".

Both are provided:

* :class:`SortSelector` — exact top-k via ``numpy.argpartition`` (O(n)).
  This is the default used in training.
* :class:`HeapSelector` — a faithful size-k min-heap scan, modelling the
  hardware priority queue.  Selects the same set as :class:`SortSelector`
  whenever scores are distinct (tie-breaking differs, as it would in
  hardware); unit tests assert the equivalence.

Selectors return a boolean mask over the flat score vector.
"""

from __future__ import annotations

import abc
import heapq

import numpy as np

__all__ = ["Selector", "SortSelector", "HeapSelector", "top_k_mask"]


def top_k_mask(scores: np.ndarray, k: int) -> np.ndarray:
    """Boolean mask of the ``k`` largest entries of a 1-D score vector."""
    n = scores.size
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    mask = np.zeros(n, dtype=bool)
    if k == 0:
        return mask
    if k >= n:
        mask[:] = True
        return mask
    idx = np.argpartition(scores, n - k)[n - k :]
    mask[idx] = True
    return mask


class Selector(abc.ABC):
    """Strategy object choosing which weights stay tracked."""

    @abc.abstractmethod
    def select(self, scores: np.ndarray, k: int) -> np.ndarray:
        """Return a boolean mask with at most ``k`` True entries."""


class SortSelector(Selector):
    """Exact top-k via argpartition (the listing's ``sort``/``λ`` step)."""

    def select(self, scores: np.ndarray, k: int) -> np.ndarray:
        return top_k_mask(scores, k)


class HeapSelector(Selector):
    """Size-k min-heap scan modelling the paper's hardware priority queue.

    Scans scores in index order keeping the k best seen so far; an incoming
    score strictly greater than the heap minimum evicts it.  O(n log k),
    single pass — the access pattern a streaming accelerator would use.
    """

    def select(self, scores: np.ndarray, k: int) -> np.ndarray:
        n = scores.size
        mask = np.zeros(n, dtype=bool)
        if k <= 0:
            return mask
        if k >= n:
            mask[:] = True
            return mask
        heap: list[tuple[float, int]] = []
        for i, s in enumerate(scores):
            if len(heap) < k:
                heapq.heappush(heap, (float(s), i))
            elif s > heap[0][0]:
                heapq.heapreplace(heap, (float(s), i))
        for _, i in heap:
            mask[i] = True
        return mask
