"""Top-k selection strategies for the tracked-weight set.

Algorithm 1 in the paper sorts all accumulated gradients and keeps the top
``k`` ("for clarity of exposition"); the practical implementation it
describes instead maintains "a priority queue of size k, with incoming
gradients higher than the stored minimum evicting the minimum elements".

Both are provided:

* :class:`SortSelector` — exact top-k via ``numpy.argpartition`` (O(n)).
  This is the default used in training.
* :class:`HeapSelector` — the paper's streaming size-k priority queue.
  The faithful pure-Python scan is kept as
  :meth:`HeapSelector.select_scan`; :meth:`HeapSelector.select` computes
  the *identical* mask (including the scan's index-order tie-breaking)
  with a chunked ``argpartition`` prefilter plus a threshold scan, which
  is orders of magnitude faster on real score vectors.  Unit tests assert
  the two are equal, ties included.

Selectors return a boolean mask over the flat score vector.  Each also
offers ``select_into(scores, k, out=...)`` which writes the mask into a
caller-owned buffer, letting hot loops (the DropBack step) avoid a fresh
boolean allocation per call.
"""

from __future__ import annotations

import abc
import heapq

import numpy as np

from repro.profile import profiled

__all__ = ["Selector", "SortSelector", "HeapSelector", "top_k_mask"]


@profiled("selector.top_k_mask")
def top_k_mask(scores: np.ndarray, k: int, out: np.ndarray | None = None) -> np.ndarray:
    """Boolean mask of the ``k`` largest entries of a 1-D score vector.

    Pass ``out`` (a bool array of the same size) to reuse a scratch buffer
    instead of allocating; it is cleared and returned.
    """
    n = scores.size
    if k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    if out is None:
        mask = np.zeros(n, dtype=bool)  # repro: noqa[RPA002] fallback when no out= buffer given
    else:
        mask = out
        mask.fill(False)
    if k == 0:
        return mask
    if k >= n:
        mask[:] = True
        return mask
    idx = np.argpartition(scores, n - k)[n - k :]
    mask[idx] = True
    return mask


class Selector(abc.ABC):
    """Strategy object choosing which weights stay tracked."""

    @abc.abstractmethod
    def select(self, scores: np.ndarray, k: int) -> np.ndarray:
        """Return a boolean mask with at most ``k`` True entries."""

    def select_into(self, scores: np.ndarray, k: int, out: np.ndarray) -> np.ndarray:
        """Like :meth:`select`, but write the mask into ``out`` and return it."""
        out[...] = self.select(scores, k)
        return out


class SortSelector(Selector):
    """Exact top-k via argpartition (the listing's ``sort``/``λ`` step)."""

    def select(self, scores: np.ndarray, k: int) -> np.ndarray:
        return top_k_mask(scores, k)

    def select_into(self, scores: np.ndarray, k: int, out: np.ndarray) -> np.ndarray:
        return top_k_mask(scores, k, out=out)


class HeapSelector(Selector):
    """Size-k min-heap scan modelling the paper's hardware priority queue.

    Scans scores in index order keeping the k best seen so far; an incoming
    score strictly greater than the heap minimum evicts it (smallest score
    first, lowest index first among equal scores).  That streaming rule has
    a closed form over the final threshold ``T`` (the kth-largest score):

    * every score strictly above ``T`` survives — none can ever become the
      heap minimum while a ``T`` remains;
    * ties at ``T`` only ever *enter* the heap while it still holds a
      sub-``T`` entry, which happens exactly for the ``T``-valued members
      of the first k scores ``>= T`` in index order;
    * each later ``> T`` arrival evicts the lowest-index resident tie, so
      of those entered ties only the **last** ``k - #(> T)`` (by index)
      survive.

    :meth:`select` evaluates that closed form directly: a chunked
    ``argpartition`` prefilter finds ``T`` without materializing a full
    sort, then one vectorized threshold scan reconstructs the exact
    surviving set.  :meth:`select_scan` is the original O(n log k)
    pure-Python heap, retained as the semantic reference — the test suite
    asserts both produce identical masks, ties included.
    """

    def __init__(self, chunk_size: int = 1 << 16):
        if chunk_size <= 0:
            raise ValueError(f"chunk_size must be positive, got {chunk_size}")
        self.chunk_size = int(chunk_size)

    def select(self, scores: np.ndarray, k: int) -> np.ndarray:
        return self._select_cleared(scores, k, np.zeros(scores.size, dtype=bool))

    def select_into(self, scores: np.ndarray, k: int, out: np.ndarray) -> np.ndarray:
        out.fill(False)
        return self._select_cleared(scores, k, out)

    def _select_cleared(self, scores: np.ndarray, k: int, mask: np.ndarray) -> np.ndarray:
        n = scores.size
        if k <= 0:
            return mask
        if k >= n:
            mask[:] = True
            return mask
        threshold = self._threshold(scores, k)
        above = scores > threshold
        n_above = int(np.count_nonzero(above))
        mask |= above
        need = k - n_above
        if need > 0:
            # Ties: T-valued members of the first k scores >= T enter the
            # heap; later > T arrivals evict them lowest-index-first.
            entered = np.flatnonzero(scores >= threshold)[:k]
            ties = entered[scores[entered] == threshold]
            mask[ties[ties.size - need :]] = True
        return mask

    def _threshold(self, scores: np.ndarray, k: int) -> float:
        """Exact kth-largest score via a chunked argpartition prefilter.

        Each chunk keeps only its own top-k candidates (the global top-k is
        a subset of the union), then one partition of the much smaller pool
        yields the exact threshold.
        """
        n = scores.size
        step = self.chunk_size
        if n <= step:
            return scores[np.argpartition(scores, n - k)[n - k]]
        keep = []
        for lo in range(0, n, step):
            seg = scores[lo : lo + step]
            if seg.size <= k:
                keep.append(seg)
            else:
                keep.append(np.partition(seg, seg.size - k)[seg.size - k :])
        pool = np.concatenate(keep)
        return pool[np.argpartition(pool, pool.size - k)[pool.size - k]]

    def select_scan(self, scores: np.ndarray, k: int) -> np.ndarray:
        """The faithful streaming scan (reference for :meth:`select`).

        O(n log k), single pass in index order — the access pattern the
        paper's streaming accelerator would use.
        """
        n = scores.size
        mask = np.zeros(n, dtype=bool)
        if k <= 0:
            return mask
        if k >= n:
            mask[:] = True
            return mask
        heap: list[tuple[float, int]] = []
        for i, s in enumerate(scores):
            if len(heap) < k:
                heapq.heappush(heap, (float(s), i))
            elif s > heap[0][0]:
                heapq.heapreplace(heap, (float(s), i))
        for _, i in heap:
            mask[i] = True
        return mask
