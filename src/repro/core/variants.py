"""DropBack variants for design-space ablations.

The published algorithm selects the top-k accumulated gradients *globally*
across all parameters, which lets the budget flow to wherever learning
happens (Table 2 shows it concentrating in early layers at large k and in
late layers at tiny k).  The natural alternative an implementer might
reach for is a fixed *per-layer* allocation.  :class:`UniformBudgetDropBack`
implements that variant so the ablation bench can quantify what global
selection buys.
"""

from __future__ import annotations

import numpy as np

from repro.core.dropback import DropBack
from repro.core.selection import top_k_mask
from repro.nn import Module

__all__ = ["UniformBudgetDropBack"]


class UniformBudgetDropBack(DropBack):
    """DropBack with the budget split across parameters pro-rata by size.

    Each parameter tensor gets ``k * size / total`` tracked slots (at least
    one), and top-k selection runs *within* each tensor instead of
    globally.  Everything else (regeneration, freezing, accounting) is
    inherited.
    """

    def __init__(self, model: Module, k: int, lr: float, **kwargs):
        super().__init__(model, k, lr, **kwargs)
        total = self.total_prunable
        target = min(k, total)
        # Largest-remainder apportionment: floors first, then hand out the
        # remainder by fractional part; every layer keeps at least one slot
        # and never exceeds its size.
        raw = [target * size / total for size in self._sizes]
        budgets = [max(1, min(size, int(r))) for r, size in zip(raw, self._sizes)]
        while sum(budgets) < target:
            # Most under-served layer (by fractional shortfall) with headroom.
            candidates = [
                (raw[j] - budgets[j], j)
                for j in range(len(budgets))
                if budgets[j] < self._sizes[j]
            ]
            if not candidates:
                break
            budgets[max(candidates)[1]] += 1
        while sum(budgets) > target:
            candidates = [(budgets[j], j) for j in range(len(budgets)) if budgets[j] > 1]
            if not candidates:
                break
            budgets[max(candidates)[1]] -= 1
        self._layer_budgets = budgets

    def _select(self, scores: np.ndarray) -> np.ndarray:
        mask = np.zeros(self.total_prunable, dtype=bool)
        for (lo, hi), budget in zip(
            zip(self._offsets[:-1], self._offsets[1:]), self._layer_budgets
        ):
            mask[lo:hi] = top_k_mask(scores[lo:hi], min(budget, hi - lo))
        return mask

    def step(self) -> None:
        # Reuse the parent step but intercept selection by temporarily
        # swapping the selector with a per-layer one.
        original = self.selector
        parent = self

        class _PerLayer:
            def select(self, scores, k):
                return parent._select(scores)

        self.selector = _PerLayer()
        try:
            super().step()
        finally:
            self.selector = original
