"""From-scratch reverse-mode autograd engine on numpy (Chainer substitute)."""

from repro.tensor.conv import (
    avg_pool2d,
    conv2d,
    conv_out_size,
    global_avg_pool2d,
    max_pool2d,
)
from repro.tensor.functional import (
    batch_norm,
    batch_norm_relu,
    cross_entropy,
    dropout,
    elu,
    gelu,
    leaky_relu,
    linear,
    log_softmax,
    mse_loss,
    nll_loss,
    prelu,
    softmax,
    softplus,
)
from repro.tensor.gradcheck import gradcheck, numerical_gradient
from repro.tensor.tensor import Tensor, concat, is_grad_enabled, no_grad, pad2d, unbroadcast

__all__ = [
    "Tensor",
    "concat",
    "pad2d",
    "no_grad",
    "is_grad_enabled",
    "unbroadcast",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "conv_out_size",
    "linear",
    "prelu",
    "dropout",
    "batch_norm",
    "batch_norm_relu",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "leaky_relu",
    "elu",
    "softplus",
    "gelu",
    "gradcheck",
    "numerical_gradient",
]
