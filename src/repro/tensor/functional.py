"""Functional neural-network operations (activations, normalization, losses).

These are the fused, numerically careful ops the layer classes in
:mod:`repro.nn` delegate to.  Each returns a :class:`repro.tensor.Tensor`
wired into the autograd tape.
"""

from __future__ import annotations

import numpy as np

from repro.profile import profiled
from repro.tensor import kernels
from repro.tensor.tensor import Tensor, unbroadcast

__all__ = [
    "linear",
    "prelu",
    "dropout",
    "batch_norm",
    "batch_norm_relu",
    "log_softmax",
    "softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "leaky_relu",
    "elu",
    "softplus",
    "gelu",
]


@profiled("linear.forward")
def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ W.T + b`` with ``W`` of shape (out, in)."""
    out = x @ weight.T
    if bias is not None:
        out = out + bias
    return out


@profiled("prelu.forward")
def prelu(x: Tensor, slope: Tensor) -> Tensor:
    """Parametric ReLU: ``max(x, 0) + a * min(x, 0)``.

    ``slope`` is either a scalar tensor or per-channel (broadcast against
    axis 1 of an NCHW / NC input).  The slope itself is trainable — and under
    DropBack, prunable back to its constant init (0.25).
    """
    pos = x.data > 0
    a = slope.data
    if a.ndim == 1 and x.ndim > 1:
        a = a.reshape((1, -1) + (1,) * (x.ndim - 2))
    out_data = np.where(pos, x.data, a * x.data)

    def backward(g, out=None):
        if x.requires_grad:
            out._accumulate(x, np.where(pos, g, a * g))
        if slope.requires_grad:
            # repro: noqa[RPA002] dtype harmonization before unbroadcast
            ga = np.where(pos, 0.0, g * x.data).astype(slope.dtype)
            out._accumulate(slope, unbroadcast(ga, a.shape).reshape(slope.shape))

    out = Tensor.from_op(out_data, (x, slope), lambda g: backward(g, out))
    return out


@profiled("dropout.forward")
def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout: zero with prob ``p``, scale survivors by 1/(1-p)."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    if not training or p == 0.0:
        return x
    keep = 1.0 - p
    mask = (rng.random(x.shape) < keep).astype(x.dtype) / keep  # repro: noqa[RPA002]
    out_data = x.data * mask

    def backward(g, out=None):
        if x.requires_grad:
            out._accumulate(x, g * mask)

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out


@profiled("batch_norm.forward")
def batch_norm(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization over axis 1 (channels) of an NC or NCHW tensor.

    In training mode the batch statistics are used and the running buffers
    updated in place; in eval mode the running statistics are used.  The
    backward pass implements the full BN gradient (including the dependence
    of mean/var on x).  Normalization itself runs on the kernel backend
    selected in :mod:`repro.tensor.kernels`; batch-statistic computation and
    running-buffer updates are backend-independent and stay here.
    """
    axes, mu, var, g_, b_ = _bn_stats(
        x, gamma, beta, running_mean, running_var, training, momentum
    )
    backend, fwd = kernels.resolve("batch_norm_forward")
    _, bwd = kernels.resolve("batch_norm_backward", backend)
    out_data, ctx = fwd(x.data, g_, b_, mu, var, eps)

    def backward(g, out=None):
        with profiled("batch_norm.backward"):
            gx, ggamma, gbeta = bwd(
                g, ctx, axes, training, x.requires_grad, gamma.requires_grad, beta.requires_grad
            )
            if ggamma is not None:
                out._accumulate(gamma, ggamma)
            if gbeta is not None:
                out._accumulate(beta, gbeta)
            if gx is not None:
                out._accumulate(x, gx)

    out = Tensor.from_op(out_data, (x, gamma, beta), lambda g: backward(g, out))
    return out


def _bn_stats(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float,
):
    """Batch/running statistics plus reshaped affine params (shared by the
    plain and fused batch-norm entry points; updates running buffers in
    place when training)."""
    axes = (0,) if x.ndim == 2 else (0, 2, 3)
    shape = (1, -1) if x.ndim == 2 else (1, -1, 1, 1)
    g_ = gamma.data.reshape(shape)
    b_ = beta.data.reshape(shape)

    if training:
        mu = x.data.mean(axis=axes, keepdims=True)
        var = x.data.var(axis=axes, keepdims=True)
        m = x.data.size / x.data.shape[1]  # elements per channel
        running_mean *= 1.0 - momentum
        running_mean += momentum * mu.reshape(-1)
        # Unbiased variance for the running buffer, as in standard frameworks.
        unbias = m / max(m - 1.0, 1.0)
        running_var *= 1.0 - momentum
        running_var += momentum * var.reshape(-1) * unbias
    else:
        mu = running_mean.reshape(shape)
        var = running_var.reshape(shape)
    return axes, mu, var, g_, b_


@profiled("batch_norm_relu.forward")
def batch_norm_relu(
    x: Tensor,
    gamma: Tensor,
    beta: Tensor,
    running_mean: np.ndarray,
    running_var: np.ndarray,
    training: bool,
    momentum: float = 0.1,
    eps: float = 1e-5,
) -> Tensor:
    """Batch normalization immediately followed by relu, as one tape node.

    Semantically identical to ``batch_norm(...).relu()`` (the ``reference``
    kernel *is* that composition); the ``fast`` kernel folds the affine into
    a per-channel scale/shift and clamps in place, halving the passes over
    the activation.  Used by :class:`repro.nn.FusedBNReLU`.
    """
    axes, mu, var, g_, b_ = _bn_stats(
        x, gamma, beta, running_mean, running_var, training, momentum
    )
    backend, fwd = kernels.resolve("bn_relu_forward")
    _, bwd = kernels.resolve("bn_relu_backward", backend)
    out_data, ctx = fwd(x.data, g_, b_, mu, var, eps)

    def backward(g, out=None):
        with profiled("batch_norm_relu.backward"):
            gx, ggamma, gbeta = bwd(
                g, ctx, axes, training, x.requires_grad, gamma.requires_grad, beta.requires_grad
            )
            if ggamma is not None:
                out._accumulate(gamma, ggamma)
            if gbeta is not None:
                out._accumulate(beta, gbeta)
            if gx is not None:
                out._accumulate(x, gx)

    out = Tensor.from_op(out_data, (x, gamma, beta), lambda g: backward(g, out))
    return out


@profiled("log_softmax.forward")
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable log-softmax."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    lse = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - lse

    def backward(g, out=None):
        if x.requires_grad:
            sm = np.exp(out_data)
            out._accumulate(x, g - sm * g.sum(axis=axis, keepdims=True))

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out


@profiled("softmax.forward")
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Softmax via exp(log_softmax) for stability."""
    return log_softmax(x, axis=axis).exp()


@profiled("nll_loss.forward")
def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Mean negative log-likelihood given log-probabilities and int labels."""
    targets = np.asarray(targets)
    n = log_probs.shape[0]
    idx = (np.arange(n), targets)
    out_data = np.asarray(-log_probs.data[idx].mean(), dtype=log_probs.dtype)

    def backward(g, out=None):
        if log_probs.requires_grad:
            full = np.zeros_like(log_probs.data)  # repro: noqa[RPA002] scatter target
            full[idx] = -1.0 / n
            out._accumulate(log_probs, full * g)

    out = Tensor.from_op(out_data, (log_probs,), lambda g: backward(g, out))
    return out


@profiled("cross_entropy.forward")
def cross_entropy(logits: Tensor, targets: np.ndarray) -> Tensor:
    """Mean softmax cross-entropy from raw logits and integer labels."""
    return nll_loss(log_softmax(logits, axis=-1), targets)


@profiled("mse_loss.forward")
def mse_loss(pred: Tensor, target: np.ndarray | Tensor) -> Tensor:
    """Mean squared error."""
    t = target.data if isinstance(target, Tensor) else np.asarray(target, dtype=pred.dtype)
    diff = pred - Tensor(t)
    return (diff * diff).mean()


@profiled("leaky_relu.forward")
def leaky_relu(x: Tensor, slope: float = 0.01) -> Tensor:
    """Leaky ReLU with a fixed negative slope."""
    pos = x.data > 0
    out_data = np.where(pos, x.data, slope * x.data)

    def backward(g, out=None):
        if x.requires_grad:
            out._accumulate(x, np.where(pos, g, slope * g))

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out


@profiled("elu.forward")
def elu(x: Tensor, alpha: float = 1.0) -> Tensor:
    """Exponential linear unit: x for x>0, alpha*(e^x - 1) otherwise."""
    pos = x.data > 0
    exp_x = np.exp(np.minimum(x.data, 0.0))
    out_data = np.where(pos, x.data, alpha * (exp_x - 1.0))

    def backward(g, out=None):
        if x.requires_grad:
            out._accumulate(x, np.where(pos, g, g * alpha * exp_x))

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out


@profiled("softplus.forward")
def softplus(x: Tensor) -> Tensor:
    """Numerically stable ``log(1 + e^x)``."""
    out_data = np.logaddexp(0.0, x.data)

    def backward(g, out=None):
        if x.requires_grad:
            sig = 1.0 / (1.0 + np.exp(-x.data))
            out._accumulate(x, g * sig)

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out


@profiled("gelu.forward")
def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    c = np.sqrt(2.0 / np.pi)
    inner = c * (x.data + 0.044715 * x.data**3)
    t = np.tanh(inner)
    out_data = 0.5 * x.data * (1.0 + t)

    def backward(g, out=None):
        if x.requires_grad:
            dinner = c * (1.0 + 3 * 0.044715 * x.data**2)
            dt = (1.0 - t**2) * dinner
            out._accumulate(x, g * (0.5 * (1.0 + t) + 0.5 * x.data * dt))

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out
