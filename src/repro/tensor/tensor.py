"""Reverse-mode automatic differentiation on numpy arrays.

This is the training substrate the reproduction runs on: the original paper
used Chainer, which is unavailable here, so we implement a tape-based
autograd engine from scratch.  A :class:`Tensor` wraps a ``numpy.ndarray``
and records, for every differentiable operation, a backward closure plus the
parent tensors it consumed.  :meth:`Tensor.backward` runs a topological sort
of that graph and accumulates gradients.

Design notes
------------
* Gradients are plain numpy arrays stored on ``Tensor.grad`` and *accumulated*
  (``+=``) so a tensor used twice receives the sum of both contributions.
* Broadcasting is handled uniformly by :func:`unbroadcast`, which reduces an
  upstream gradient back to a parent's shape.
* The graph is dynamic (define-by-run): each forward pass builds a fresh
  tape, matching how the experiments repeatedly call ``loss.backward()``
  inside the training loop.
* Heavy ops (conv, pooling, batchnorm) live in :mod:`repro.tensor.conv` and
  :mod:`repro.tensor.functional`; this module holds the core class and
  pointwise/linear-algebra primitives.
"""

from __future__ import annotations

from typing import Callable, Iterable, Sequence

import numpy as np

from repro.profile import profiled

__all__ = ["Tensor", "unbroadcast", "no_grad", "is_grad_enabled"]


_GRAD_ENABLED = [True]


class no_grad:
    """Context manager disabling graph construction (for eval passes)."""

    def __enter__(self):
        self._prev = _GRAD_ENABLED[0]
        _GRAD_ENABLED[0] = False
        return self

    def __exit__(self, *exc):
        _GRAD_ENABLED[0] = self._prev
        return False


def is_grad_enabled() -> bool:
    """Whether operations currently record backward closures."""
    return _GRAD_ENABLED[0]


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` to ``shape`` by summing over broadcast dimensions.

    The inverse of numpy broadcasting for gradient flow: axes that were
    prepended are summed away; axes that were stretched from size 1 are
    summed keeping dims.
    """
    if grad.shape == shape:
        return grad
    # Sum away prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum stretched axes back to 1.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array with a gradient and a place in the autograd tape.

    Parameters
    ----------
    data:
        Array (or array-like) holding the value.  Floating-point data is
        kept in its given dtype (training uses float32).
    requires_grad:
        If True, ``backward`` populates :attr:`grad` for this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "name", "_saved_grads")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data, requires_grad: bool = False, name: str | None = None):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data)
        if requires_grad and not np.issubdtype(self.data.dtype, np.floating):
            raise TypeError("only floating-point tensors can require gradients")
        self.requires_grad = bool(requires_grad)
        self.grad: np.ndarray | None = None
        self._backward: Callable[[np.ndarray], None] | None = None
        self._parents: tuple[Tensor, ...] = ()
        self.name = name

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #

    @staticmethod
    def from_op(
        data: np.ndarray,
        parents: Sequence["Tensor"],
        backward: Callable[[np.ndarray], None],
    ) -> "Tensor":
        """Build the result tensor of an op, wiring the tape if enabled."""
        req = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=req)
        if req:
            out._parents = tuple(parents)
            out._backward = backward
        return out

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def item(self) -> float:
        return float(self.data.item())

    def numpy(self) -> np.ndarray:
        """The underlying array (no copy)."""
        return self.data

    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        tag = f", name={self.name!r}" if self.name else ""
        return (
            f"Tensor(shape={self.shape}, dtype={self.dtype},"
            f" requires_grad={self.requires_grad}{tag})"
        )

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # backward
    # ------------------------------------------------------------------ #

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded tape.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (scalar tensors only get the
            conventional implicit 1.0).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be provided for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=self.data.dtype)

        order = _topo_order(self)
        grads: dict[int, np.ndarray] = {id(self): grad}
        for node in order:
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.requires_grad and node._backward is None:
                # Leaf: accumulate into .grad
                node.grad = g if node.grad is None else node.grad + g
            if node._backward is not None:
                node._saved_grads = grads  # type: ignore[attr-defined]
                try:
                    node._backward(g)
                finally:
                    del node._saved_grads  # type: ignore[attr-defined]

    def _accumulate(self, parent: "Tensor", grad: np.ndarray) -> None:
        """Route a gradient contribution to ``parent`` during backward."""
        store: dict[int, np.ndarray] = getattr(self, "_saved_grads")
        key = id(parent)
        if key in store:
            store[key] = store[key] + grad
        else:
            store[key] = grad

    # ------------------------------------------------------------------ #
    # arithmetic
    # ------------------------------------------------------------------ #

    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(np.asarray(other, dtype=self.dtype))

    def __add__(self, other):
        other = self._coerce(other)
        out_data = self.data + other.data

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, unbroadcast(g, self.shape))
            if other.requires_grad:
                out._accumulate(other, unbroadcast(g, other.shape))

        out = Tensor.from_op(out_data, (self, other), lambda g: backward(g, out))
        return out

    __radd__ = __add__

    def __neg__(self):
        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, -g)

        out = Tensor.from_op(-self.data, (self,), lambda g: backward(g, out))
        return out

    def __sub__(self, other):
        other = self._coerce(other)
        out_data = self.data - other.data

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, unbroadcast(g, self.shape))
            if other.requires_grad:
                out._accumulate(other, unbroadcast(-g, other.shape))

        out = Tensor.from_op(out_data, (self, other), lambda g: backward(g, out))
        return out

    def __rsub__(self, other):
        return self._coerce(other) - self

    def __mul__(self, other):
        other = self._coerce(other)
        out_data = self.data * other.data

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, unbroadcast(g * other.data, self.shape))
            if other.requires_grad:
                out._accumulate(other, unbroadcast(g * self.data, other.shape))

        out = Tensor.from_op(out_data, (self, other), lambda g: backward(g, out))
        return out

    __rmul__ = __mul__

    def __truediv__(self, other):
        other = self._coerce(other)
        out_data = self.data / other.data

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, unbroadcast(g / other.data, self.shape))
            if other.requires_grad:
                out._accumulate(
                    other, unbroadcast(-g * self.data / (other.data**2), other.shape)
                )

        out = Tensor.from_op(out_data, (self, other), lambda g: backward(g, out))
        return out

    def __rtruediv__(self, other):
        return self._coerce(other) / self

    def __pow__(self, exponent: float):
        if not np.isscalar(exponent):
            raise TypeError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, g * exponent * self.data ** (exponent - 1))

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    @profiled("tensor.matmul")
    def __matmul__(self, other):
        other = self._coerce(other)
        _, mm = kernels.resolve("matmul")
        out_data = mm(self.data, other.data)

        def backward(g, out=None):
            with profiled("tensor.matmul.backward"):
                if self.requires_grad:
                    ga = mm(g, np.swapaxes(other.data, -1, -2))
                    out._accumulate(self, unbroadcast(ga, self.shape))
                if other.requires_grad:
                    gb = mm(np.swapaxes(self.data, -1, -2), g)
                    out._accumulate(other, unbroadcast(gb, other.shape))

        out = Tensor.from_op(out_data, (self, other), lambda g: backward(g, out))
        return out

    # ------------------------------------------------------------------ #
    # shape ops
    # ------------------------------------------------------------------ #

    def reshape(self, *shape):
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        in_shape = self.shape
        out_data = self.data.reshape(shape)

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, g.reshape(in_shape))

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    def transpose(self, *axes):
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inv = np.argsort(axes)
        out_data = self.data.transpose(axes)

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, g.transpose(inv))

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    @property
    def T(self):
        return self.transpose()

    def __getitem__(self, key):
        out_data = self.data[key]

        def backward(g, out=None):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, g)
                out._accumulate(self, full)

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    # ------------------------------------------------------------------ #
    # reductions
    # ------------------------------------------------------------------ #

    def sum(self, axis=None, keepdims: bool = False):
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g, out=None):
            if self.requires_grad:
                gg = g
                if not keepdims and axis is not None:
                    gg = np.expand_dims(gg, axis)
                out._accumulate(self, np.broadcast_to(gg, self.shape).copy())

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    def mean(self, axis=None, keepdims: bool = False):
        if axis is None:
            count = self.size
        else:
            ax = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in ax]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis=None, keepdims: bool = False):
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g, out=None):
            if self.requires_grad:
                expanded = out_data
                gg = g
                if not keepdims and axis is not None:
                    expanded = np.expand_dims(expanded, axis)
                    gg = np.expand_dims(gg, axis)
                mask = (self.data == expanded).astype(self.data.dtype)
                # Split gradient equally among ties (rare in float training).
                denom = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                out._accumulate(self, mask * gg / denom)

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    # ------------------------------------------------------------------ #
    # pointwise nonlinearities
    # ------------------------------------------------------------------ #

    def exp(self):
        out_data = np.exp(self.data)

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, g * out_data)

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    def log(self):
        out_data = np.log(self.data)

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, g / self.data)

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    def sqrt(self):
        return self**0.5

    def relu(self):
        backend, fwd = kernels.resolve("relu_forward")
        _, bwd = kernels.resolve("relu_backward", backend)
        out_data, ctx = fwd(self.data)

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, bwd(g, ctx))

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    def tanh(self):
        out_data = np.tanh(self.data)

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, g * (1.0 - out_data**2))

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    def sigmoid(self):
        out_data = 1.0 / (1.0 + np.exp(-self.data))

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, g * out_data * (1.0 - out_data))

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    def abs(self):
        out_data = np.abs(self.data)

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, g * np.sign(self.data))

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out

    def clip(self, lo: float, hi: float):
        out_data = np.clip(self.data, lo, hi)
        mask = (self.data >= lo) & (self.data <= hi)

        def backward(g, out=None):
            if self.requires_grad:
                out._accumulate(self, g * mask)

        out = Tensor.from_op(out_data, (self,), lambda g: backward(g, out))
        return out


def _topo_order(root: Tensor) -> list[Tensor]:
    """Reverse topological order of the tape reachable from ``root``.

    Iterative DFS (training graphs for the conv nets exceed Python's default
    recursion limit).
    """
    order: list[Tensor] = []
    visited: set[int] = set()
    stack: list[tuple[Tensor, bool]] = [(root, False)]
    while stack:
        node, processed = stack.pop()
        if processed:
            order.append(node)
            continue
        if id(node) in visited:
            continue
        visited.add(id(node))
        stack.append((node, True))
        for p in node._parents:
            if id(p) not in visited:
                stack.append((p, False))
    order.reverse()
    return order


def concat(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Concatenate tensors along ``axis`` (differentiable).

    Needed by DenseNet's feature concatenation.
    """
    tensors = list(tensors)
    out_data = np.concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.shape[axis] for t in tensors]
    offsets = np.cumsum([0] + sizes)

    def backward(g, out=None):
        for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
            if t.requires_grad:
                sl = [slice(None)] * g.ndim
                sl[axis] = slice(int(lo), int(hi))
                out._accumulate(t, g[tuple(sl)])

    out = Tensor.from_op(out_data, tuple(tensors), lambda g: backward(g, out))
    return out


def pad2d(x: Tensor, pad: int) -> Tensor:
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""
    if pad == 0:
        return x
    pw = [(0, 0)] * (x.ndim - 2) + [(pad, pad), (pad, pad)]
    out_data = np.pad(x.data, pw)

    def backward(g, out=None):
        if x.requires_grad:
            sl = (Ellipsis, slice(pad, -pad), slice(pad, -pad))
            out._accumulate(x, g[sl])

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out


# Imported at the bottom so `import repro.tensor.tensor` works standalone:
# the kernels package import re-enters the repro.tensor package __init__,
# which needs the Tensor class above to exist already.
from repro.tensor import kernels  # noqa: E402
