"""Fast backend: pooled workspaces, batch-flattened conv GEMM, fused ops.

Every kernel here is parity-tested against the ``reference`` backend
(``tests/test_kernels_parity.py``) and perf-gated in CI against a
committed normalized baseline, so a "fast" path that stops being fast or
starts being wrong cannot ship silently.

What actually wins on this op mix (measured, not assumed):

* **Persistent im2col workspaces** — the patch buffer is the largest
  allocation in a conv step; acquiring it from the refcount-guarded pool
  (``zero=False``: im2col overwrites every element) makes it persistent
  across training steps.  Likewise the pad buffer, GEMM outputs, and the
  pooling staging buffers.
* **Batch-flattened conv GEMM** — for the late-layer shapes conv produces
  (many channels, small spatial output), N separate ``(F,K) @ (K,OHW)``
  products are dominated by per-GEMM overhead.  Building the patch matrix
  directly in ``(K, N*OH*OW)`` layout turns the whole batch into one
  L2-friendly GEMM (1.2-2.7x on the bench shapes); the backward runs the
  same flat layout (single-GEMM weight gradient instead of an einsum).
* **Blocked/tiled matmul** — very tall 2-D GEMMs are row-blocked so each
  ``block x K`` panel fits the L2 target; batched right-hand sides with a
  skinny trailing dim are flattened into one GEMM.
* **Fused batchnorm(+relu)** — folding ``(gamma, beta, mu, var)`` into a
  per-channel ``scale``/``shift`` pair halves the passes over the
  activation; relu happens in place on the same buffer.  ``xhat`` is
  recomputed lazily in backward, so eval/inference never pays for it.
"""

from __future__ import annotations

import numpy as np

from repro.profile import profiled
from repro.tensor.kernels.reference import _bn_input_grad
from repro.tensor.kernels.registry import register_kernel
from repro.tensor.workspace import acquire_workspace

__all__: list[str] = []

#: Largest OH*OW for which the batch-flattened conv GEMM wins (measured:
#: 1.2-2.7x at <= 64, loses past ~200 where per-batch GEMMs are already big).
FLAT_CONV_MAX_OHW = 64
#: Largest trailing dim for which a batched matmul is flattened (the
#: transpose-in/out copies only pay off for genuinely skinny columns).
FLAT_MATMUL_MAX_COLS = 16
#: Row-block working-set target for the tiled 2-D matmul (L2-ish).
L2_TARGET_BYTES = 1 << 20
#: Minimum rows before tiling is considered at all.
TILE_MIN_ROWS = 8192


# ---------------------------------------------------------------------- #
# matmul
# ---------------------------------------------------------------------- #


def _tiled_matmul_2d(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-blocked GEMM: each ``block x K`` panel of ``a`` fits the L2 target."""
    m, k = a.shape
    block = max(512, L2_TARGET_BYTES // max(1, k * a.itemsize))
    if m < 2 * block:
        return np.matmul(a, b)
    # repro: noqa[RPA002] op output buffer; escapes to the caller
    out = np.empty((m, b.shape[1]), dtype=a.dtype)
    for lo in range(0, m, block):
        np.matmul(a[lo : lo + block], b, out=out[lo : lo + block])
    return out


def _flattened_batched_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """One big GEMM instead of ``b.shape[0]`` skinny ones.

    ``a`` is (M, K), ``b`` is (N, K, C) with small C: transpose ``b`` into a
    pooled (K, N*C) panel, multiply once, transpose back.
    """
    nb, k, cols = b.shape
    m = a.shape[0]
    panel = acquire_workspace((k, nb * cols), b.dtype, zero=False)
    np.copyto(panel.reshape(k, nb, cols), b.swapaxes(0, 1))
    o2 = acquire_workspace((m, nb * cols), a.dtype, zero=False)
    np.matmul(a, panel, out=o2)
    # repro: noqa[RPA002] op output buffer; escapes to the caller
    out = np.empty((nb, m, cols), dtype=a.dtype)
    np.copyto(out, o2.reshape(m, nb, cols).swapaxes(0, 1))
    return out


@register_kernel("matmul", "fast")
@profiled("kernels.matmul.fast")
def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Shape-dispatched matmul: flatten skinny batches, tile tall panels."""
    if a.dtype == b.dtype:
        if (
            a.ndim == 2
            and b.ndim == 3
            and b.shape[0] > 1
            and b.shape[1] == a.shape[1]
            and b.shape[2] <= FLAT_MATMUL_MAX_COLS
        ):
            return _flattened_batched_matmul(a, b)
        if a.ndim == 2 and b.ndim == 2 and a.shape[0] >= TILE_MIN_ROWS:
            return _tiled_matmul_2d(a, b)
    return a @ b


# ---------------------------------------------------------------------- #
# im2col / col2im (pooled)
# ---------------------------------------------------------------------- #


@register_kernel("im2col", "fast")
@profiled("kernels.im2col.fast")
def im2col(xp: np.ndarray, kh: int, kw: int, sh: int, sw: int, oh: int, ow: int) -> np.ndarray:
    """Reference patch extraction into a pooled, persistent workspace."""
    n, c = xp.shape[:2]
    # zero=False: the loop below writes every element of the buffer.
    cols = acquire_workspace((n, c, kh, kw, oh, ow), xp.dtype, zero=False)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = xp[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw]
    return cols.reshape(n, c * kh * kw, oh * ow)


# col2im already scatter-adds into a pooled workspace in the reference
# kernel; the fast backend falls back to it via the registry.


# ---------------------------------------------------------------------- #
# conv2d
# ---------------------------------------------------------------------- #


def _padded_input(x: np.ndarray, pad: int) -> np.ndarray:
    """Zero-pad spatially into a pooled buffer (border re-zeroed per call)."""
    if not pad:
        return x
    n, c, h, w = x.shape
    xp = acquire_workspace((n, c, h + 2 * pad, w + 2 * pad), x.dtype, zero=False)
    xp[:, :, :pad, :] = 0
    xp[:, :, -pad:, :] = 0
    xp[:, :, :, :pad] = 0
    xp[:, :, :, -pad:] = 0
    xp[:, :, pad:-pad, pad:-pad] = x
    return xp


@register_kernel("conv2d_forward", "fast")
@profiled("kernels.conv2d_forward.fast")
def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> tuple[np.ndarray, dict]:
    """Pooled-workspace conv; one flat GEMM when the spatial output is small."""
    n, c = x.shape[:2]
    f = weight.shape[0]
    kh, kw = weight.shape[2], weight.shape[3]
    k = c * kh * kw
    ohw = oh * ow
    w_flat = weight.reshape(f, -1)
    xp = _padded_input(x, pad)
    ctx = {
        "w_flat": w_flat,
        "x_shape": x.shape,
        "w_shape": weight.shape,
        "stride": stride,
        "pad": pad,
        "oh": oh,
        "ow": ow,
    }

    if ohw <= FLAT_CONV_MAX_OHW:
        # Patch matrix built directly in (K, N*OH*OW) layout: the whole
        # batch is one GEMM and the transposes live in the im2col writes
        # (same strided-copy cost as the batched layout).
        cols = acquire_workspace((c, kh, kw, n, oh, ow), xp.dtype, zero=False)
        xs = xp.swapaxes(0, 1)  # (C, N, H, W) view
        for i in range(kh):
            for j in range(kw):
                cols[:, i, j] = xs[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
        cf = cols.reshape(k, n * ohw)
        o2 = acquire_workspace((f, n * ohw), xp.dtype, zero=False)
        np.matmul(w_flat, cf, out=o2)
        if bias is not None:
            o2 += bias.reshape(f, 1)
        # repro: noqa[RPA002] op output; escapes into the returned Tensor
        out = np.empty((n, f, oh, ow), dtype=xp.dtype)
        np.copyto(out, o2.reshape(f, n, oh, ow).swapaxes(0, 1))
        ctx.update(flat=True, cols=cols)
        return out, ctx

    # Large spatial output: per-sample GEMMs are already BLAS-sized; keep
    # the batched layout but run it entirely on pooled buffers.
    cols = acquire_workspace((n, c, kh, kw, oh, ow), xp.dtype, zero=False)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = xp[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
    cols3 = cols.reshape(n, k, ohw)
    out3 = acquire_workspace((n, f, ohw), xp.dtype, zero=False)
    np.matmul(w_flat, cols3, out=out3)
    if bias is not None:
        out3 += bias.reshape(1, f, 1)
    ctx.update(flat=False, cols=cols)
    return out3.reshape(n, f, oh, ow), ctx


@register_kernel("conv2d_backward", "fast")
@profiled("kernels.conv2d_backward.fast")
def conv2d_backward(
    g: np.ndarray,
    ctx: dict,
    need_gx: bool,
    need_gw: bool,
    need_gb: bool,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Backward matching :func:`conv2d_forward`'s layout choice."""
    w_flat = ctx["w_flat"]
    n, c, h, w = ctx["x_shape"]
    f, _, kh, kw = ctx["w_shape"]
    stride, pad, oh, ow = ctx["stride"], ctx["pad"], ctx["oh"], ctx["ow"]
    ohw = oh * ow
    k = c * kh * kw

    if ctx["flat"]:
        cf = ctx["cols"].reshape(k, n * ohw)
        g2 = acquire_workspace((f, n * ohw), g.dtype, zero=False)
        np.copyto(g2.reshape(f, n, oh, ow), g.swapaxes(0, 1))
        gb = g2.sum(axis=1) if need_gb else None
        gw = None
        if need_gw:
            gw = acquire_workspace((f, k), g.dtype, zero=False)
            np.matmul(g2, cf.T, out=gw)
            gw = gw.reshape(ctx["w_shape"])
        gx = None
        if need_gx:
            gcols = acquire_workspace((k, n * ohw), g.dtype, zero=False)
            np.matmul(w_flat.T, g2, out=gcols)
            xg = acquire_workspace((n, c, h + 2 * pad, w + 2 * pad), g.dtype)
            xs = xg.swapaxes(0, 1)  # (C, N, HP, WP) view
            c6 = gcols.reshape(c, kh, kw, n, oh, ow)
            for i in range(kh):
                for j in range(kw):
                    xs[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += c6[
                        :, i, j
                    ]
            gx = xg[:, :, pad:-pad, pad:-pad] if pad else xg
        return gx, gw, gb

    cols3 = ctx["cols"].reshape(n, k, ohw)
    g2 = g.reshape(n, f, ohw)
    gb = g2.sum(axis=(0, 2)) if need_gb else None
    gw = None
    if need_gw:
        gw = np.einsum("nfo,nko->fk", g2, cols3, optimize=True).reshape(ctx["w_shape"])
    gx = None
    if need_gx:
        gcols = acquire_workspace((n, k, ohw), g.dtype, zero=False)
        np.matmul(w_flat.T, g2, out=gcols)
        xg = acquire_workspace((n, c, h + 2 * pad, w + 2 * pad), g.dtype)
        c6 = gcols.reshape(n, c, kh, kw, oh, ow)
        for i in range(kh):
            for j in range(kw):
                xg[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += c6[
                    :, :, i, j
                ]
        gx = xg[:, :, pad:-pad, pad:-pad] if pad else xg
    return gx, gw, gb


# ---------------------------------------------------------------------- #
# relu
# ---------------------------------------------------------------------- #


@register_kernel("relu_forward", "fast")
@profiled("kernels.relu_forward.fast")
def relu_forward(x: np.ndarray) -> tuple[np.ndarray, dict]:
    """Single-pass rectifier; the mask is derived from the output lazily."""
    # repro: noqa[RPA002] op output; escapes into the returned Tensor
    out = np.maximum(x, 0.0)
    return out, {"out": out}


@register_kernel("relu_backward", "fast")
@profiled("kernels.relu_backward.fast")
def relu_backward(g: np.ndarray, ctx: dict) -> np.ndarray:
    # out > 0 is exactly x > 0 (maximum clamps negatives to 0).
    return g * (ctx["out"] > 0)


# ---------------------------------------------------------------------- #
# batch norm (and fused batchnorm+relu)
# ---------------------------------------------------------------------- #


def _scale_shift(g_, b_, mu, var, eps):
    """Fold (gamma, beta, mu, var) into per-channel scale/shift."""
    inv_std = 1.0 / np.sqrt(var + eps)
    scale = g_ * inv_std
    shift = b_ - mu * scale
    return inv_std, scale, shift


def _lazy_xhat(ctx: dict) -> np.ndarray:
    """Recompute the normalized input on first backward use."""
    if ctx["xhat"] is None:
        ctx["xhat"] = (ctx["x"] - ctx["mu"]) * ctx["inv_std"]
    return ctx["xhat"]


@register_kernel("batch_norm_forward", "fast")
@profiled("kernels.batch_norm_forward.fast")
def batch_norm_forward(
    x: np.ndarray,
    g_: np.ndarray,
    b_: np.ndarray,
    mu: np.ndarray,
    var: np.ndarray,
    eps: float,
) -> tuple[np.ndarray, dict]:
    """One multiply-add pass over the activation (xhat deferred to backward)."""
    inv_std, scale, shift = _scale_shift(g_, b_, mu, var, eps)
    out = x * scale
    out += shift
    return out, {"x": x, "mu": mu, "inv_std": inv_std, "g_": g_, "xhat": None}


@register_kernel("batch_norm_backward", "fast")
@profiled("kernels.batch_norm_backward.fast")
def batch_norm_backward(
    g: np.ndarray,
    ctx: dict,
    axes: tuple[int, ...],
    training: bool,
    need_gx: bool,
    need_ggamma: bool,
    need_gbeta: bool,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    inv_std, g_ = ctx["inv_std"], ctx["g_"]
    xhat = _lazy_xhat(ctx) if (need_ggamma or need_gx) else None
    ggamma = (g * xhat).sum(axis=axes) if need_ggamma else None
    gbeta = g.sum(axis=axes) if need_gbeta else None
    gx = _bn_input_grad(g * g_, xhat, inv_std, axes, training) if need_gx else None
    return gx, ggamma, gbeta


@register_kernel("bn_relu_forward", "fast")
@profiled("kernels.bn_relu_forward.fast")
def bn_relu_forward(
    x: np.ndarray,
    g_: np.ndarray,
    b_: np.ndarray,
    mu: np.ndarray,
    var: np.ndarray,
    eps: float,
) -> tuple[np.ndarray, dict]:
    """Fused normalize-scale-shift-clamp: one buffer, relu in place."""
    inv_std, scale, shift = _scale_shift(g_, b_, mu, var, eps)
    y = x * scale
    y += shift
    out = np.maximum(y, 0.0, out=y)
    return out, {"x": x, "mu": mu, "inv_std": inv_std, "g_": g_, "out": out, "xhat": None}


@register_kernel("bn_relu_backward", "fast")
@profiled("kernels.bn_relu_backward.fast")
def bn_relu_backward(
    g: np.ndarray,
    ctx: dict,
    axes: tuple[int, ...],
    training: bool,
    need_gx: bool,
    need_ggamma: bool,
    need_gbeta: bool,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    gy = g * (ctx["out"] > 0)
    inv_std, g_ = ctx["inv_std"], ctx["g_"]
    xhat = _lazy_xhat(ctx) if (need_ggamma or need_gx) else None
    ggamma = (gy * xhat).sum(axis=axes) if need_ggamma else None
    gbeta = gy.sum(axis=axes) if need_gbeta else None
    gx = _bn_input_grad(gy * g_, xhat, inv_std, axes, training) if need_gx else None
    return gx, ggamma, gbeta


# ---------------------------------------------------------------------- #
# pooling (forward staging through the pool; backwards already pooled
# in the reference kernels, which the registry falls back to)
# ---------------------------------------------------------------------- #


@register_kernel("max_pool2d_forward", "fast")
@profiled("kernels.max_pool2d_forward.fast")
def max_pool2d_forward(
    x: np.ndarray, kernel: int, stride: int, oh: int, ow: int
) -> tuple[np.ndarray, dict]:
    """Reference argmax pooling with the candidate stack pooled."""
    n, c = x.shape[:2]
    # zero=False: the loop below writes every element of the buffer.
    cand = acquire_workspace((kernel * kernel, n, c, oh, ow), x.dtype, zero=False)
    for i in range(kernel):
        for j in range(kernel):
            cand[i * kernel + j] = x[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ]
    arg = cand.argmax(axis=0)
    out = np.take_along_axis(cand, arg[None], axis=0)[0]
    ctx = {
        "arg": arg,
        "x_shape": x.shape,
        "dtype": x.dtype,
        "kernel": kernel,
        "stride": stride,
        "oh": oh,
        "ow": ow,
    }
    return out, ctx


@register_kernel("avg_pool2d_forward", "fast")
@profiled("kernels.avg_pool2d_forward.fast")
def avg_pool2d_forward(
    x: np.ndarray, kernel: int, stride: int, oh: int, ow: int
) -> tuple[np.ndarray, dict]:
    """Reference window-sum pooling accumulating into a pooled buffer."""
    n, c = x.shape[:2]
    inv = 1.0 / (kernel * kernel)
    out = acquire_workspace((n, c, oh, ow), x.dtype)  # zeroed: accumulation target
    for i in range(kernel):
        for j in range(kernel):
            out += x[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
    out *= inv
    ctx = {
        "x_shape": x.shape,
        "dtype": x.dtype,
        "kernel": kernel,
        "stride": stride,
        "oh": oh,
        "ow": ow,
    }
    return out, ctx
