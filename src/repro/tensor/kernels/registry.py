"""Kernel dispatch registry: ``(op, backend)`` → implementation.

Every heavy tensor op (matmul, im2col/col2im conv, batchnorm, relu,
pooling) resolves its implementation here instead of calling numpy
directly.  Backends register kernels with :func:`register_kernel`; call
sites resolve with :func:`resolve` at op-construction time and close over
the returned function, so a forward's backward always runs on the same
backend even if the selection changes mid-step.

Selection precedence (highest first):

1. per-op override (:func:`set_op_backend`, for benchmarking/bisection)
2. the active backend (:func:`set_backend` / ``REPRO_BACKEND``)
3. ``reference`` — every op is registered there, so resolution never fails

The ``reference`` backend is the pre-dispatch numpy code verbatim and is
the parity oracle for every other backend (see ``tests/test_kernels_parity``).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = [
    "register_kernel",
    "resolve",
    "get_backend",
    "set_backend",
    "set_op_backend",
    "use_backend",
    "list_ops",
    "list_backends",
    "op_overrides",
    "op_table",
    "thread_count",
    "REFERENCE_BACKEND",
    "DEFAULT_BACKEND",
]

REFERENCE_BACKEND = "reference"
#: Used when ``REPRO_BACKEND`` is unset: the fast kernels are parity-tested
#: against reference and strictly dominate it on the bench shapes.
DEFAULT_BACKEND = "fast"

#: op name -> backend name -> kernel implementation.
_KERNELS: dict[str, dict[str, Callable]] = {}
#: every backend name seen at registration time (validates selection).
_BACKENDS: set[str] = set()
#: per-op backend overrides (highest precedence).
_OP_OVERRIDES: dict[str, str] = {}
#: active backend; ``None`` means "not yet read from the environment".
_ACTIVE: list[str | None] = [None]


def register_kernel(op: str, backend: str) -> Callable[[Callable], Callable]:
    """Decorator registering ``fn`` as the ``backend`` implementation of ``op``."""

    def deco(fn: Callable) -> Callable:
        table = _KERNELS.setdefault(op, {})
        if backend in table:
            raise ValueError(f"duplicate kernel registration: {op!r}/{backend!r}")
        table[backend] = fn
        _BACKENDS.add(backend)
        return fn

    return deco


def _validate(backend: str) -> str:
    backend = backend.strip().lower()
    if backend not in _BACKENDS:
        known = ", ".join(sorted(_BACKENDS))
        raise ValueError(f"unknown backend {backend!r} (known: {known})")
    return backend


def get_backend() -> str:
    """The active backend name (initialised from ``REPRO_BACKEND`` once)."""
    if _ACTIVE[0] is None:
        _ACTIVE[0] = _validate(os.environ.get("REPRO_BACKEND", DEFAULT_BACKEND))
    return _ACTIVE[0]


def set_backend(backend: str) -> None:
    """Select the backend used by subsequent op constructions."""
    _ACTIVE[0] = _validate(backend)


def set_op_backend(op: str, backend: str | None) -> None:
    """Pin one op to a backend regardless of the active selection.

    Pass ``None`` to drop the pin.  Unknown ops are rejected so typos do
    not silently pin nothing.
    """
    if op not in _KERNELS:
        raise ValueError(f"unknown op {op!r} (known: {', '.join(sorted(_KERNELS))})")
    if backend is None:
        _OP_OVERRIDES.pop(op, None)
    else:
        _OP_OVERRIDES[op] = _validate(backend)


def op_overrides() -> dict[str, str]:
    """Snapshot of the active per-op pins (op -> backend name)."""
    return dict(_OP_OVERRIDES)


@contextmanager
def use_backend(backend: str) -> Iterator[None]:
    """Temporarily select ``backend`` (tests, benchmarks)."""
    prev = get_backend()
    set_backend(backend)
    try:
        yield
    finally:
        _ACTIVE[0] = prev


def resolve(op: str, backend: str | None = None) -> tuple[str, Callable]:
    """The ``(backend_name, kernel)`` that should run ``op`` right now.

    ``backend`` forces a specific backend (used so an op's backward runs on
    the backend its forward resolved to).  A backend without a registration
    for ``op`` falls back to ``reference``; the returned name reflects the
    kernel actually chosen.
    """
    table = _KERNELS.get(op)
    if table is None:
        raise KeyError(f"unknown op {op!r} (known: {', '.join(sorted(_KERNELS))})")
    name = backend or _OP_OVERRIDES.get(op) or get_backend()
    fn = table.get(name)
    if fn is None:
        name = REFERENCE_BACKEND
        fn = table[name]
    return name, fn


def list_ops() -> list[str]:
    """All registered op names, sorted."""
    return sorted(_KERNELS)


def list_backends(op: str | None = None) -> list[str]:
    """Backends registered for ``op`` (or every backend seen, if ``None``)."""
    if op is None:
        return sorted(_BACKENDS)
    if op not in _KERNELS:
        raise KeyError(f"unknown op {op!r}")
    return sorted(_KERNELS[op])


def op_table() -> dict[str, dict[str, Callable]]:
    """A copy of the full dispatch table (introspection/CLI)."""
    return {op: dict(table) for op, table in _KERNELS.items()}


def thread_count() -> int:
    """Worker threads for the ``threaded`` backend (``REPRO_THREADS``).

    Defaults to the machine's CPU count; clamped to at least 1.  BLAS
    releases the GIL, so threads help only when more than one core exists —
    the threaded backend is registered regardless so its dispatch and
    parity are exercised everywhere.
    """
    raw = os.environ.get("REPRO_THREADS", "").strip()
    if raw:
        try:
            n = int(raw)
        except ValueError as exc:
            raise ValueError(f"REPRO_THREADS must be an integer, got {raw!r}") from exc
    else:
        n = os.cpu_count() or 1
    return max(1, n)
