"""Sparse backend: packed CSR weights for high-sparsity forwards.

The paper's regimes leave most of the weight plane at exactly zero
(``zero_untracked`` DropBack after :meth:`freeze`, and every
``zero_untracked`` sparse checkpoint served by ``repro.serve``), yet the
``fast`` backend still multiplies all of it.  This backend packs a weight
matrix once into CSR — the structure is the frozen tracked set, so it is
stable across steps — and runs the forward as a sparse x dense product
that touches only tracked entries.

Dispatch policy (per call, cheapest check first):

1. a **registered pack** for the weight operand (see
   :func:`register_weight`) is used directly — the pack structure is the
   frozen tracked set and its values re-gather lazily from the live
   plane view after the writer calls :func:`mark_dirty` (a full gather
   is ~8x the SpMV itself, so it must not run per call; DropBack marks
   its packs after every frozen value update);
2. otherwise, if the operand's measured density is at or below
   :func:`density_cutoff` (``REPRO_SPARSE_DENSITY_CUTOFF``, default
   0.25), it is packed transiently for this call;
3. otherwise the call is delegated verbatim to the ``fast`` backend —
   dense workloads through the sparse backend are *bit-exact* with
   ``fast`` because they literally run its kernels.

Packs are keyed by the operand view's identity (data pointer, shape,
strides, dtype), so the ``W.T`` view that ``functional.linear`` passes to
``matmul`` and the ``W`` view the backward passes both resolve without
copies.  A registered pack holds a strong reference to its weight array,
which both keeps the values readable and guarantees the address key can
never be recycled by another allocation; callers must
:func:`invalidate` packs when the tracked set changes or the plane is
re-homed (DropBack does this in ``unfreeze``/``rebind_plane``).

Numerical contract: sparse accumulation order differs from BLAS blocking,
so sparse outputs match ``reference`` to float tolerance (documented in
``docs/sparse.md``), while structure construction, value refresh, and the
above-cutoff fallback are bitwise deterministic.

scipy is a declared dependency, but its absence only disables the packed
paths: every kernel then falls through to ``fast``.
"""

from __future__ import annotations

import os

import numpy as np

from repro.profile import profiled
from repro.tensor.kernels import fast as _fast
from repro.tensor.kernels import reference as _reference
from repro.tensor.kernels.registry import register_kernel

try:  # pragma: no cover - exercised indirectly; scipy ships in the env
    import scipy.sparse as _sp
except ImportError:  # pragma: no cover - gated fallback, not hit in CI
    _sp = None

__all__ = [
    "SPARSE_BACKEND",
    "DEFAULT_DENSITY_CUTOFF",
    "PackedWeight",
    "density_cutoff",
    "set_density_cutoff",
    "is_available",
    "pack_dense",
    "pack_from_indices",
    "register_weight",
    "mark_dirty",
    "invalidate",
    "invalidate_all",
    "registered_pack_count",
    "sparse_linear",
]

SPARSE_BACKEND = "sparse"

#: Densities above this fraction of nonzeros fall back to the dense
#: ``fast`` path (CSR only wins when most multiply-adds are skippable).
DEFAULT_DENSITY_CUTOFF = 0.25

_CUTOFF: list[float | None] = [None]

#: Registered packs keyed by operand-view identity; see :func:`_view_key`.
_PACKS: dict[tuple, "PackedWeight"] = {}


def is_available() -> bool:
    """Whether scipy.sparse is importable (packed paths enabled)."""
    return _sp is not None


def density_cutoff() -> float:
    """The auto-dispatch density threshold (env read once, like REPRO_BACKEND)."""
    if _CUTOFF[0] is None:
        raw = os.environ.get("REPRO_SPARSE_DENSITY_CUTOFF", "")
        if raw:
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(
                    f"REPRO_SPARSE_DENSITY_CUTOFF must be a float in [0, 1], got {raw!r}"
                )
        else:
            value = DEFAULT_DENSITY_CUTOFF
        if not 0.0 <= value <= 1.0:
            raise ValueError(
                f"REPRO_SPARSE_DENSITY_CUTOFF must be within [0, 1], got {value}"
            )
        _CUTOFF[0] = value
    return _CUTOFF[0]


def set_density_cutoff(value: float | None) -> None:
    """Override the cutoff (``None`` re-reads the environment lazily)."""
    if value is not None:
        value = float(value)
        if not 0.0 <= value <= 1.0:
            raise ValueError(f"density cutoff must be within [0, 1], got {value}")
    _CUTOFF[0] = value


def _view_key(arr: np.ndarray) -> tuple:
    """Identity of an ndarray *view*: address + layout + dtype.

    Two views of the same buffer with the same geometry (e.g. ``w.T``
    built twice) produce equal keys; any reallocation, reshape, or
    re-home produces a different one.
    """
    return (arr.__array_interface__["data"][0], arr.shape, arr.strides, arr.dtype.str)


class PackedWeight:
    """A CSR-packed weight plus the machinery to keep its values live.

    ``matrix`` is a ``scipy.sparse.csr_matrix`` built over ``data`` by
    reference, so :meth:`refresh` — an O(nnz) gather from the backing
    weight view — updates the matrix in place without reconstructing it.
    The gather is random-access over the whole weight and costs several
    times the SpMV itself, so it only runs after :meth:`mark_dirty`
    (called by whoever rewrites the backing values — DropBack's frozen
    step does).  Static packs (built from a checkpoint payload, no live
    backing array) never refresh.
    """

    __slots__ = ("matrix", "data", "gather", "base", "nnz", "shape", "dirty")

    def __init__(self, matrix, gather: np.ndarray | None = None,
                 base: np.ndarray | None = None):
        self.matrix = matrix
        # repro: noqa[RPA001] CSR value-buffer alias on a plain slot class,
        # not a Parameter plane view
        self.data = matrix.data
        self.gather = gather
        self.base = base
        self.nnz = int(matrix.data.size)
        self.shape = tuple(matrix.shape)
        self.dirty = False

    @property
    def nbytes(self) -> int:
        """Bytes held by the packed structure (values + index arrays)."""
        m = self.matrix
        total = m.data.nbytes + m.indices.nbytes + m.indptr.nbytes
        if self.gather is not None:
            total += self.gather.nbytes
        return total

    @property
    def density(self) -> float:
        rows, cols = self.shape
        size = rows * cols
        return self.nnz / size if size else 0.0

    def mark_dirty(self) -> None:
        """Note that the backing values changed; the next use re-gathers."""
        self.dirty = True

    def refresh(self) -> None:
        """Re-gather values from the live weight if marked dirty (frozen
        steps rewrite tracked values in place; the structure never
        changes, so this is a pure value gather)."""
        if self.dirty and self.base is not None:
            np.take(self.base, self.gather, out=self.data)
            self.dirty = False


def _require_scipy() -> None:
    if _sp is None:
        raise RuntimeError(
            "scipy.sparse is unavailable; the packed sparse paths are disabled "
            "(kernels fall back to the fast backend)"
        )


def _csr_from_flat(shape: tuple[int, int], flat: np.ndarray, values: np.ndarray,
                   transpose: bool) -> tuple:
    """CSR triplet for the matrix (or its transpose) whose row-major flat
    nonzero positions are ``flat`` — bitwise identical to what
    ``csr_matrix(dense)`` builds, proven in tests.

    Returns ``(indptr, indices, data, order)`` where ``order`` permutes
    ``flat``/``values`` into CSR storage order.
    """
    rows_n, cols_n = shape
    r, c = np.divmod(flat, cols_n)
    if transpose:
        order = np.lexsort((r, c))
        row_ids, col_ids, nrows = c[order], r[order], cols_n
    else:
        order = np.arange(flat.size)  # ascending flat == row-major CSR order
        row_ids, col_ids, nrows = r, c, rows_n
    indptr = np.zeros(nrows + 1, dtype=np.int32)
    np.cumsum(np.bincount(row_ids, minlength=nrows), out=indptr[1:])
    return indptr, col_ids.astype(np.int32), values[order], order


def pack_from_indices(
    shape: tuple[int, int],
    flat_indices: np.ndarray,
    values: np.ndarray | None = None,
    *,
    base: np.ndarray | None = None,
    transpose: bool = False,
) -> PackedWeight:
    """Pack from a sorted flat-index set — no dense scan, no dense plane.

    ``flat_indices`` are ascending row-major positions into the 2-D
    ``shape``; values come either from ``values`` (aligned with
    ``flat_indices``, e.g. a checkpoint payload) or are gathered from
    ``base`` (a flat view of the live weight) now and on every
    :meth:`PackedWeight.refresh`.  ``transpose=True`` packs the
    transposed matrix instead (same flat positions, CSC-order traversal).
    """
    _require_scipy()
    flat = np.asarray(flat_indices, dtype=np.int64)
    if flat.size and (flat[0] < 0 or flat[-1] >= shape[0] * shape[1]):
        raise ValueError(f"flat indices out of range for shape {shape}")
    if values is None:
        if base is None:
            raise ValueError("pack_from_indices needs either values or a base view")
        vals = base[flat]
    else:
        vals = np.asarray(values)
        if vals.shape != flat.shape:
            raise ValueError("values must align one-to-one with flat_indices")
    indptr, indices, data, order = _csr_from_flat(shape, flat, vals, transpose)
    out_shape = (shape[1], shape[0]) if transpose else shape
    matrix = _sp.csr_matrix((data, indices, indptr), shape=out_shape)
    if base is None:
        return PackedWeight(matrix)
    return PackedWeight(matrix, gather=flat[order], base=base)


def pack_dense(w: np.ndarray, *, transpose: bool = False) -> PackedWeight:
    """Pack a dense 2-D array (static snapshot, no live refresh)."""
    _require_scipy()
    if w.ndim != 2:
        raise ValueError(f"pack_dense expects a 2-D array, got shape {w.shape}")
    return PackedWeight(_sp.csr_matrix(w.T if transpose else w))


def register_weight(w: np.ndarray, flat_indices: np.ndarray | None = None) -> tuple:
    """Register live packs for a weight so dispatch finds them by view.

    * 2-D ``w`` (a Linear weight, shape ``(out, in)``): registers the
      ``w.T`` orientation (the operand ``functional.linear`` passes to
      ``matmul``) *and* the ``w`` orientation (the backward's ``g @ w``
      product), sharing one gather source.
    * 4-D ``w`` (a conv kernel): registers the ``(F, C*KH*KW)`` pack the
      ``conv2d_forward`` kernel consumes.

    ``flat_indices`` (sorted, row-major positions into ``w.ravel()``)
    names the tracked set; by default every currently-nonzero entry is
    packed.  Returns opaque keys for :func:`invalidate`.
    """
    _require_scipy()
    if not w.flags["C_CONTIGUOUS"]:
        raise ValueError("register_weight needs a C-contiguous weight (a plane view)")
    if w.ndim not in (2, 4):
        raise ValueError(f"register_weight supports 2-D/4-D weights, got shape {w.shape}")
    base = w.reshape(-1)
    if flat_indices is None:
        flat_indices = np.flatnonzero(base)
    shape2d = w.shape if w.ndim == 2 else (w.shape[0], base.size // w.shape[0])
    keys = []
    if w.ndim == 2:
        pairs = (
            (w.T, pack_from_indices(shape2d, flat_indices, base=base)),
            (w, pack_from_indices(shape2d, flat_indices, base=base, transpose=True)),
        )
    else:
        pairs = ((w, pack_from_indices(shape2d, flat_indices, base=base)),)
    for view, pack in pairs:
        key = _view_key(view)
        _PACKS[key] = pack
        keys.append(key)
    return tuple(keys)


def mark_dirty(keys) -> int:
    """Flag registered packs whose backing values were rewritten in place.

    Cheap (a bool per pack); the O(nnz) value re-gather happens lazily on
    each pack's next use.  Returns how many packs were present.
    """
    marked = 0
    for key in keys:
        pack = _PACKS.get(key)
        if pack is not None:
            pack.mark_dirty()
            marked += 1
    return marked


def invalidate(keys) -> int:
    """Drop registered packs by key; returns how many were present."""
    dropped = 0
    for key in keys:
        dropped += _PACKS.pop(key, None) is not None
    return dropped


def invalidate_all() -> int:
    """Drop every registered pack (tests / full plane teardown)."""
    count = len(_PACKS)
    _PACKS.clear()
    return count


def registered_pack_count() -> int:
    return len(_PACKS)


def _density(arr: np.ndarray) -> float:
    return np.count_nonzero(arr) / arr.size if arr.size else 1.0


def _auto_packable(mat2d: np.ndarray) -> bool:
    """Per-call packing test: float weight at/below the density cutoff."""
    return mat2d.dtype.kind == "f" and _density(mat2d) <= density_cutoff()


def _spmm(pack: PackedWeight, a: np.ndarray) -> np.ndarray:
    """``a @ b`` where ``pack`` holds CSR(``b.T``): ``(bT_csr @ a.T).T``."""
    pack.refresh()
    if a.ndim == 1:
        return pack.matrix @ a
    # repro: noqa[RPA002] op output buffer; escapes to the caller
    return np.ascontiguousarray((pack.matrix @ a.T).T)


@register_kernel("matmul", SPARSE_BACKEND)
@profiled("kernels.matmul.sparse")
def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Sparse x dense matmul when the second operand is (or packs) sparse.

    Registered packs win outright; unregistered 2-D float operands pack
    transiently when dense enough to skip most work; everything else —
    batched products, mixed dtypes, dense weights — is the fast kernel
    verbatim (hence bit-exact with ``fast``).
    """
    if _sp is not None and b.ndim == 2 and a.ndim in (1, 2) and a.dtype == b.dtype:
        pack = _PACKS.get(_view_key(b))
        if pack is None and _auto_packable(b):
            pack = pack_dense(b, transpose=True)
        if pack is not None:
            return _spmm(pack, a)
    return _fast.matmul(a, b)


@register_kernel("conv2d_forward", SPARSE_BACKEND)
@profiled("kernels.conv2d_forward.sparse")
def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> tuple[np.ndarray, dict]:
    """im2col + CSR GEMM conv forward skipping untracked filter taps.

    The ctx uses the *reference* layout, so the backward (resolved under
    this backend) hands it to the reference conv backward unchanged.
    """
    f = weight.shape[0]
    w_flat = weight.reshape(f, -1)
    pack = None
    if _sp is not None and weight.dtype == x.dtype:
        pack = _PACKS.get(_view_key(weight))
        if pack is None and _auto_packable(w_flat):
            pack = pack_dense(w_flat)
    if pack is None:
        return _fast.conv2d_forward(x, weight, bias, stride, pad, oh, ow)

    n = x.shape[0]
    kh, kw = weight.shape[2], weight.shape[3]
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x
    cols = _reference.im2col(xp, kh, kw, stride, stride, oh, ow)  # (N, K, OH*OW)
    k, ohw = cols.shape[1], oh * ow
    pack.refresh()
    # One SpMM over the whole batch: (F, K) @ (K, N*OH*OW).
    # repro: noqa[RPA002] batch-flattened patch copy feeding a single SpMM
    flat_cols = np.moveaxis(cols, 0, 1).reshape(k, n * ohw)
    out2 = pack.matrix @ flat_cols
    # repro: noqa[RPA002] op output buffer; escapes to the caller
    out = np.ascontiguousarray(out2.reshape(f, n, ohw).transpose(1, 0, 2))
    out = out.reshape(n, f, oh, ow)
    if bias is not None:
        out += bias.reshape(1, f, 1, 1)
    ctx = {
        "cols": cols,
        "w_flat": w_flat,
        "x_shape": x.shape,
        "w_shape": weight.shape,
        "stride": stride,
        "pad": pad,
        "oh": oh,
        "ow": ow,
    }
    return out, ctx


@register_kernel("conv2d_backward", SPARSE_BACKEND)
@profiled("kernels.conv2d_backward.sparse")
def conv2d_backward(
    g: np.ndarray,
    ctx: dict,
    need_gx: bool,
    need_gw: bool,
    need_gb: bool,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Route the ctx to whichever dense backward understands its layout.

    The sparse forward emits reference-layout ctx; the above-cutoff
    fallback emits fast-layout ctx (marked by its ``"flat"`` key).
    Backward stays dense: its operands (incoming gradients, patch
    matrices) have no exploitable sparsity.
    """
    if "flat" in ctx:
        return _fast.conv2d_backward(g, ctx, need_gx, need_gw, need_gb)
    return _reference.conv2d_backward(g, ctx, need_gx, need_gw, need_gb)


def sparse_linear(pack: PackedWeight, x: np.ndarray,
                  bias: np.ndarray | None = None) -> np.ndarray:
    """Forward-only affine map ``x @ W.T + b`` over a pack of ``W``.

    The serving executor's building block (``repro.serve.packed``): the
    pack holds CSR of the ``(out, in)`` weight itself, so the product is
    one CSR x dense-transpose SpMM per layer.
    """
    pack.refresh()
    out = np.ascontiguousarray((pack.matrix @ x.T).T)
    if bias is not None:
        out += bias
    return out
