"""Reference backend: the pre-dispatch numpy implementations, verbatim.

This backend is the parity oracle.  Every op is registered here, so any
other backend may implement a subset and fall back for the rest.  The code
bodies are the original :mod:`repro.tensor` implementations moved behind
the registry — autograd semantics, summation order, and workspace-pool
behaviour are exactly what shipped before the dispatch layer existed.

Kernel calling conventions
--------------------------
Forward kernels operate on plain ``numpy.ndarray``s (never Tensors) and
return ``(out, ctx)`` where ``ctx`` is an opaque dict the matching
backward kernel consumes.  Backward kernels receive ``need_*`` flags so
they skip gradients nobody asked for, and return a tuple with ``None`` in
the skipped slots.
"""

from __future__ import annotations

import numpy as np

from repro.profile import profiled
from repro.tensor.kernels.registry import REFERENCE_BACKEND, register_kernel
from repro.tensor.workspace import acquire_workspace

__all__: list[str] = []


# ---------------------------------------------------------------------- #
# matmul
# ---------------------------------------------------------------------- #


@register_kernel("matmul", REFERENCE_BACKEND)
@profiled("kernels.matmul.reference")
def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Plain (possibly batched) matrix product."""
    return a @ b


# ---------------------------------------------------------------------- #
# im2col / col2im
# ---------------------------------------------------------------------- #


@register_kernel("im2col", REFERENCE_BACKEND)
@profiled("kernels.im2col.reference")
def im2col(xp: np.ndarray, kh: int, kw: int, sh: int, sw: int, oh: int, ow: int) -> np.ndarray:
    """Extract conv patches: (N, C, H, W) -> (N, C*KH*KW, OH*OW)."""
    n, c = xp.shape[:2]
    # repro: noqa[RPA002] the patch buffer is retained by the backward
    # closure for the whole step; the fast backend pools it instead
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=xp.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = xp[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw]
    return cols.reshape(n, c * kh * kw, oh * ow)


@register_kernel("col2im", REFERENCE_BACKEND)
@profiled("kernels.col2im.reference")
def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, ...],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    oh: int,
    ow: int,
    pad: int,
) -> np.ndarray:
    """Scatter-add patches back: inverse of :func:`im2col` (gradient flow)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    xg = acquire_workspace((n, c, hp, wp), cols.dtype)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        for j in range(kw):
            xg[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += cols[:, :, i, j]
    if pad:
        xg = xg[:, :, pad:-pad, pad:-pad]
    return xg


# ---------------------------------------------------------------------- #
# conv2d
# ---------------------------------------------------------------------- #


@register_kernel("conv2d_forward", REFERENCE_BACKEND)
@profiled("kernels.conv2d_forward.reference")
def conv2d_forward(
    x: np.ndarray,
    weight: np.ndarray,
    bias: np.ndarray | None,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> tuple[np.ndarray, dict]:
    """im2col + batched GEMM convolution forward."""
    n = x.shape[0]
    f = weight.shape[0]
    kh, kw = weight.shape[2], weight.shape[3]
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x
    cols = im2col(xp, kh, kw, stride, stride, oh, ow)  # (N, C*KH*KW, OH*OW)
    w_flat = weight.reshape(f, -1)  # (F, C*KH*KW)
    out = np.matmul(w_flat, cols).reshape(n, f, oh, ow)
    if bias is not None:
        out += bias.reshape(1, f, 1, 1)
    ctx = {
        "cols": cols,
        "w_flat": w_flat,
        "x_shape": x.shape,
        "w_shape": weight.shape,
        "stride": stride,
        "pad": pad,
        "oh": oh,
        "ow": ow,
    }
    return out, ctx


@register_kernel("conv2d_backward", REFERENCE_BACKEND)
@profiled("kernels.conv2d_backward.reference")
def conv2d_backward(
    g: np.ndarray,
    ctx: dict,
    need_gx: bool,
    need_gw: bool,
    need_gb: bool,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Gradients of :func:`conv2d_forward` w.r.t. input, weight, bias."""
    cols, w_flat = ctx["cols"], ctx["w_flat"]
    n, _, _, _ = ctx["x_shape"]
    f, _, kh, kw = ctx["w_shape"]
    stride, pad, oh, ow = ctx["stride"], ctx["pad"], ctx["oh"], ctx["ow"]
    g2 = g.reshape(n, f, oh * ow)  # (N, F, OH*OW)
    gb = g2.sum(axis=(0, 2)) if need_gb else None
    gw = None
    if need_gw:
        # Sum over batch of (F, OH*OW) @ (OH*OW, C*KH*KW)
        gw = np.einsum("nfo,nko->fk", g2, cols, optimize=True).reshape(ctx["w_shape"])
    gx = None
    if need_gx:
        gcols = np.matmul(w_flat.T, g2)  # (N, C*KH*KW, OH*OW)
        gx = col2im(gcols, ctx["x_shape"], kh, kw, stride, stride, oh, ow, pad)
    return gx, gw, gb


# ---------------------------------------------------------------------- #
# relu
# ---------------------------------------------------------------------- #


@register_kernel("relu_forward", REFERENCE_BACKEND)
@profiled("kernels.relu_forward.reference")
def relu_forward(x: np.ndarray) -> tuple[np.ndarray, dict]:
    """Mask-multiply rectifier (two passes; kept as the parity oracle)."""
    mask = x > 0
    return x * mask, {"mask": mask}


@register_kernel("relu_backward", REFERENCE_BACKEND)
@profiled("kernels.relu_backward.reference")
def relu_backward(g: np.ndarray, ctx: dict) -> np.ndarray:
    return g * ctx["mask"]


# ---------------------------------------------------------------------- #
# batch norm (and the fused batchnorm+relu pair)
# ---------------------------------------------------------------------- #


@register_kernel("batch_norm_forward", REFERENCE_BACKEND)
@profiled("kernels.batch_norm_forward.reference")
def batch_norm_forward(
    x: np.ndarray,
    g_: np.ndarray,
    b_: np.ndarray,
    mu: np.ndarray,
    var: np.ndarray,
    eps: float,
) -> tuple[np.ndarray, dict]:
    """Normalize-scale-shift with ``gamma``/``beta`` already reshaped."""
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x - mu) * inv_std
    out = g_ * xhat + b_
    return out, {"xhat": xhat, "inv_std": inv_std, "g_": g_}


def _bn_input_grad(gxhat: np.ndarray, xhat: np.ndarray, inv_std, axes, training: bool):
    """Shared full-BN input gradient (dependence of mean/var included)."""
    if training:
        term1 = gxhat
        term2 = gxhat.mean(axis=axes, keepdims=True)
        term3 = xhat * (gxhat * xhat).mean(axis=axes, keepdims=True)
        return (term1 - term2 - term3) * inv_std
    return gxhat * inv_std


@register_kernel("batch_norm_backward", REFERENCE_BACKEND)
@profiled("kernels.batch_norm_backward.reference")
def batch_norm_backward(
    g: np.ndarray,
    ctx: dict,
    axes: tuple[int, ...],
    training: bool,
    need_gx: bool,
    need_ggamma: bool,
    need_gbeta: bool,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    xhat, inv_std, g_ = ctx["xhat"], ctx["inv_std"], ctx["g_"]
    ggamma = (g * xhat).sum(axis=axes) if need_ggamma else None
    gbeta = g.sum(axis=axes) if need_gbeta else None
    gx = _bn_input_grad(g * g_, xhat, inv_std, axes, training) if need_gx else None
    return gx, ggamma, gbeta


@register_kernel("bn_relu_forward", REFERENCE_BACKEND)
@profiled("kernels.bn_relu_forward.reference")
def bn_relu_forward(
    x: np.ndarray,
    g_: np.ndarray,
    b_: np.ndarray,
    mu: np.ndarray,
    var: np.ndarray,
    eps: float,
) -> tuple[np.ndarray, dict]:
    """Batchnorm followed by relu, composed from the verbatim pieces."""
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x - mu) * inv_std
    y = g_ * xhat + b_
    mask = y > 0
    out = y * mask
    return out, {"xhat": xhat, "inv_std": inv_std, "g_": g_, "mask": mask}


@register_kernel("bn_relu_backward", REFERENCE_BACKEND)
@profiled("kernels.bn_relu_backward.reference")
def bn_relu_backward(
    g: np.ndarray,
    ctx: dict,
    axes: tuple[int, ...],
    training: bool,
    need_gx: bool,
    need_ggamma: bool,
    need_gbeta: bool,
) -> tuple[np.ndarray | None, np.ndarray | None, np.ndarray | None]:
    """Relu mask first, then the full BN gradient on the masked upstream."""
    gy = g * ctx["mask"]
    xhat, inv_std, g_ = ctx["xhat"], ctx["inv_std"], ctx["g_"]
    ggamma = (gy * xhat).sum(axis=axes) if need_ggamma else None
    gbeta = gy.sum(axis=axes) if need_gbeta else None
    gx = _bn_input_grad(gy * g_, xhat, inv_std, axes, training) if need_gx else None
    return gx, ggamma, gbeta


# ---------------------------------------------------------------------- #
# pooling
# ---------------------------------------------------------------------- #


@register_kernel("max_pool2d_forward", REFERENCE_BACKEND)
@profiled("kernels.max_pool2d_forward.reference")
def max_pool2d_forward(
    x: np.ndarray, kernel: int, stride: int, oh: int, ow: int
) -> tuple[np.ndarray, dict]:
    """Window-candidate stack + argmax max pooling."""
    n, c = x.shape[:2]
    # Stack window candidates along a new axis and take the argmax.
    # repro: noqa[RPA002] forward staging; the fast backend pools it instead
    cand = np.empty((kernel * kernel, n, c, oh, ow), dtype=x.dtype)
    for i in range(kernel):
        for j in range(kernel):
            cand[i * kernel + j] = x[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ]
    arg = cand.argmax(axis=0)  # (N, C, OH, OW), values in [0, K*K)
    out = np.take_along_axis(cand, arg[None], axis=0)[0]
    ctx = {
        "arg": arg,
        "x_shape": x.shape,
        "dtype": x.dtype,
        "kernel": kernel,
        "stride": stride,
        "oh": oh,
        "ow": ow,
    }
    return out, ctx


@register_kernel("max_pool2d_backward", REFERENCE_BACKEND)
@profiled("kernels.max_pool2d_backward.reference")
def max_pool2d_backward(g: np.ndarray, ctx: dict) -> np.ndarray:
    arg, kernel, stride = ctx["arg"], ctx["kernel"], ctx["stride"]
    oh, ow = ctx["oh"], ctx["ow"]
    xg = acquire_workspace(ctx["x_shape"], ctx["dtype"])
    for win in range(kernel * kernel):
        i, j = divmod(win, kernel)
        mask = arg == win
        xg[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += g * mask
    return xg


@register_kernel("avg_pool2d_forward", REFERENCE_BACKEND)
@profiled("kernels.avg_pool2d_forward.reference")
def avg_pool2d_forward(
    x: np.ndarray, kernel: int, stride: int, oh: int, ow: int
) -> tuple[np.ndarray, dict]:
    """Window-sum average pooling."""
    n, c = x.shape[:2]
    inv = 1.0 / (kernel * kernel)
    # repro: noqa[RPA002] op output buffer; the fast backend pools it instead
    out = np.zeros((n, c, oh, ow), dtype=x.dtype)
    for i in range(kernel):
        for j in range(kernel):
            out += x[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
    out *= inv
    ctx = {
        "x_shape": x.shape,
        "dtype": x.dtype,
        "kernel": kernel,
        "stride": stride,
        "oh": oh,
        "ow": ow,
    }
    return out, ctx


@register_kernel("avg_pool2d_backward", REFERENCE_BACKEND)
@profiled("kernels.avg_pool2d_backward.reference")
def avg_pool2d_backward(g: np.ndarray, ctx: dict) -> np.ndarray:
    kernel, stride, oh, ow = ctx["kernel"], ctx["stride"], ctx["oh"], ctx["ow"]
    inv = 1.0 / (kernel * kernel)
    xg = acquire_workspace(ctx["x_shape"], ctx["dtype"])
    gi = g * inv
    for i in range(kernel):
        for j in range(kernel):
            xg[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += gi
    return xg
