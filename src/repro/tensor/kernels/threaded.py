"""Threaded backend: row/batch-parallel GEMM for the largest products.

numpy's BLAS releases the GIL for the duration of a GEMM call, so slicing
one large product into per-thread panels genuinely runs in parallel on
multi-core machines.  Worker count comes from ``REPRO_THREADS`` (default:
the CPU count); on a single-core machine every kernel degrades to the
plain call, so the backend is registered — and parity-tested — everywhere.

Only ``matmul`` is registered; every other op resolves through the
registry's ``reference`` fallback.  Threading the scatter/gather ops is a
non-starter: they are memory-bound strided copies that saturate one
core's memory ports already.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.profile import profiled
from repro.tensor.kernels.registry import register_kernel, thread_count

__all__: list[str] = []

#: Minimum rows (2-D) or batch entries (3-D) before splitting pays for the
#: futures overhead.
MIN_SPLIT_ROWS = 256
MIN_SPLIT_BATCH = 4

_POOL_LOCK = threading.Lock()
_POOL: list = [None, 0]  # [executor, worker count]


def _executor(workers: int) -> ThreadPoolExecutor:
    """A process-wide executor, rebuilt only when ``REPRO_THREADS`` changes."""
    with _POOL_LOCK:
        pool, size = _POOL
        if pool is None or size != workers:
            if pool is not None:
                pool.shutdown(wait=False)
            pool = ThreadPoolExecutor(max_workers=workers, thread_name_prefix="repro-gemm")
            _POOL[0], _POOL[1] = pool, workers
        return pool


def _split_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``range(total)`` into at most ``parts`` contiguous chunks."""
    parts = min(parts, total)
    step = -(-total // parts)  # ceil
    return [(lo, min(lo + step, total)) for lo in range(0, total, step)]


@register_kernel("matmul", "threaded")
@profiled("kernels.matmul.threaded")
def matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Panel-parallel matmul; falls through to plain ``@`` when too small."""
    workers = thread_count()
    if workers > 1 and a.dtype == b.dtype:
        if a.ndim == 2 and b.ndim == 2 and a.shape[0] >= MIN_SPLIT_ROWS:
            # repro: noqa[RPA002] op output buffer; escapes to the caller
            out = np.empty((a.shape[0], b.shape[1]), dtype=a.dtype)
            pool = _executor(workers)
            futs = [
                pool.submit(np.matmul, a[lo:hi], b, out=out[lo:hi])
                for lo, hi in _split_ranges(a.shape[0], workers)
            ]
            for fut in futs:
                fut.result()
            return out
        if a.ndim == 3 and b.ndim == 3 and a.shape[0] == b.shape[0] >= MIN_SPLIT_BATCH:
            # repro: noqa[RPA002] op output buffer; escapes to the caller
            out = np.empty((a.shape[0], a.shape[1], b.shape[2]), dtype=a.dtype)
            pool = _executor(workers)
            futs = [
                pool.submit(np.matmul, a[lo:hi], b[lo:hi], out=out[lo:hi])
                for lo, hi in _split_ranges(a.shape[0], workers)
            ]
            for fut in futs:
                fut.result()
            return out
    return a @ b
