"""Kernel dispatch layer: pluggable backends for the heavy tensor ops.

Public API::

    from repro.tensor import kernels

    kernels.set_backend("reference")        # or REPRO_BACKEND=reference
    with kernels.use_backend("threaded"):   # scoped selection
        ...
    kernels.set_op_backend("matmul", "fast")  # pin one op
    backend, fn = kernels.resolve("conv2d_forward")

Backends: ``reference`` (pre-dispatch numpy code verbatim; the parity
oracle), ``fast`` (pooled workspaces, batch-flattened conv GEMM, fused
batchnorm+relu — the default), ``threaded`` (panel-parallel GEMM sized by
``REPRO_THREADS``).  See ``docs/kernels.md``.
"""

from repro.tensor.kernels import fast, reference, threaded  # noqa: F401 - registration
from repro.tensor.kernels.registry import (
    DEFAULT_BACKEND,
    REFERENCE_BACKEND,
    get_backend,
    list_backends,
    list_ops,
    op_table,
    register_kernel,
    resolve,
    set_backend,
    set_op_backend,
    thread_count,
    use_backend,
)

__all__ = [
    "DEFAULT_BACKEND",
    "REFERENCE_BACKEND",
    "get_backend",
    "list_backends",
    "list_ops",
    "op_table",
    "register_kernel",
    "resolve",
    "set_backend",
    "set_op_backend",
    "thread_count",
    "use_backend",
]
