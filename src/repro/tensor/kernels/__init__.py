"""Kernel dispatch layer: pluggable backends for the heavy tensor ops.

Public API::

    from repro.tensor import kernels

    kernels.set_backend("reference")        # or REPRO_BACKEND=reference
    with kernels.use_backend("threaded"):   # scoped selection
        ...
    kernels.set_op_backend("matmul", "fast")  # pin one op
    backend, fn = kernels.resolve("conv2d_forward")

Backends: ``reference`` (pre-dispatch numpy code verbatim; the parity
oracle), ``fast`` (pooled workspaces, batch-flattened conv GEMM, fused
batchnorm+relu — the default), ``threaded`` (panel-parallel GEMM sized by
``REPRO_THREADS``), ``sparse`` (packed CSR weights for frozen/zeroed
high-sparsity regimes, falling back to ``fast`` above
``REPRO_SPARSE_DENSITY_CUTOFF``).  See ``docs/kernels.md`` and
``docs/sparse.md``.
"""

from repro.tensor.kernels import (  # noqa: F401 - registration
    fast,
    reference,
    sparse,
    threaded,
)
from repro.tensor.kernels.registry import (
    DEFAULT_BACKEND,
    REFERENCE_BACKEND,
    get_backend,
    list_backends,
    list_ops,
    op_overrides,
    op_table,
    register_kernel,
    resolve,
    set_backend,
    set_op_backend,
    thread_count,
    use_backend,
)

__all__ = [
    "DEFAULT_BACKEND",
    "REFERENCE_BACKEND",
    "get_backend",
    "list_backends",
    "list_ops",
    "op_overrides",
    "op_table",
    "register_kernel",
    "resolve",
    "set_backend",
    "set_op_backend",
    "thread_count",
    "use_backend",
]
