"""Micro-benchmarks of the registered kernels, per backend.

Times every backend registered for a set of representative ops on fixed
shapes drawn from the families where the ``fast`` kernels win (small
spatial outputs from the conv GEMM, channel-major batchnorm activations),
and freezes the minima into a :class:`~repro.profile.PerfReport` whose
gauge ops are named ``kernels.<op>.<backend>``.

Absolute times are machine-dependent, so CI gates the emitted report only
on *ratios*: ``check_perf_report.py --normalize kernels.<op>.reference``
for the committed baseline diff, and the ``speedup_*`` meta entries (the
reference/fast ratio measured in the same process) via ``--gate-meta``.

Used by ``repro kernels --bench`` and the bench-smoke CI job.
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.profile import OpStat, PerfReport
from repro.tensor.kernels import registry

__all__ = ["bench_kernels", "BENCH_ROUNDS"]

#: Default timing rounds per (op, backend); the report stores the minimum.
BENCH_ROUNDS = 30

#: Conv bench shape: the batched small-spatial family where the flat
#: im2col layout + single GEMM pays off (N, C, F, H/W, k, pad).
_CONV_N, _CONV_C, _CONV_F = 8, 256, 256
_CONV_HW, _CONV_K, _CONV_PAD = 4, 3, 1

#: BatchNorm+ReLU bench shape (NCHW).
_BN_SHAPE = (64, 64, 16, 16)


def _conv_case(rng: np.random.Generator):
    oh = ow = _CONV_HW + 2 * _CONV_PAD - _CONV_K + 1
    x = rng.standard_normal(
        (_CONV_N, _CONV_C, _CONV_HW, _CONV_HW), dtype=np.float32
    )
    w = rng.standard_normal((_CONV_F, _CONV_C, _CONV_K, _CONV_K), dtype=np.float32)
    b = rng.standard_normal(_CONV_F, dtype=np.float32)
    return (x, w, b, 1, _CONV_PAD, oh, ow)


def _matmul_case(rng: np.random.Generator):
    # The conv-produced GEMM: (F, C*k*k) weight against per-sample column
    # blocks with a small trailing dimension — the batch-flattened path.
    k = _CONV_C * _CONV_K * _CONV_K
    a = rng.standard_normal((_CONV_F, k), dtype=np.float32)
    b = rng.standard_normal((_CONV_N, k, 16), dtype=np.float32)
    return (a, b)


def _bn_relu_case(rng: np.random.Generator):
    x = rng.standard_normal(_BN_SHAPE, dtype=np.float32)
    c = _BN_SHAPE[1]
    shape = (1, c, 1, 1)
    g_ = rng.standard_normal(c, dtype=np.float32).reshape(shape)
    b_ = rng.standard_normal(c, dtype=np.float32).reshape(shape)
    mu = x.mean(axis=(0, 2, 3), keepdims=True)
    var = x.var(axis=(0, 2, 3), keepdims=True)
    return (x, g_, b_, mu, var, 1e-5)


def _relu_case(rng: np.random.Generator):
    return (rng.standard_normal(_BN_SHAPE, dtype=np.float32),)


def _im2col_case(rng: np.random.Generator):
    hw = _CONV_HW + 2 * _CONV_PAD
    oh = ow = hw - _CONV_K + 1
    xp = rng.standard_normal((_CONV_N, _CONV_C, hw, hw), dtype=np.float32)
    return (xp, _CONV_K, _CONV_K, 1, 1, oh, ow)


#: op name -> argument factory.  Only ops listed here are benched.
_CASES = {
    "matmul": _matmul_case,
    "conv2d_forward": _conv_case,
    "bn_relu_forward": _bn_relu_case,
    "relu_forward": _relu_case,
    "im2col": _im2col_case,
}

#: meta name -> op whose reference/fast ratio it records (the CI gates).
_SPEEDUP_METAS = {
    "speedup_conv_gemm": "matmul",
    "speedup_conv_forward": "conv2d_forward",
    "speedup_bn_relu": "bn_relu_forward",
}

#: meta name -> op whose reference/threaded ratio it records.  Only gated
#: on multi-core runners (see ci.yml): with one CPU the threaded split is
#: pure overhead, so the meta is recorded for observability but a floor
#: would be dishonest.  ``meta.cpu_count`` says which regime produced it.
_THREADED_METAS = {
    "speedup_threaded_gemm": "matmul",
}


def _min_seconds(fn, args, rounds: int, warmup: int = 2) -> float:
    """Best-of-``rounds`` wall time for one kernel call (min rejects
    scheduler noise far better than the mean at microsecond scale)."""
    for _ in range(warmup):
        fn(*args)
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn(*args)
        best = min(best, time.perf_counter() - t0)
    return best


def bench_kernels(rounds: int = BENCH_ROUNDS, seed: int = 0) -> PerfReport:
    """Time every registered backend of the benched ops; return the report.

    Each gauge op ``kernels.<op>.<backend>`` stores the best-of-``rounds``
    seconds for one call (``calls`` records the rounds).  ``meta`` carries
    the same-process reference/fast speedup ratios the CI gate enforces,
    plus the shapes so a regenerated baseline is self-describing.
    """
    rng = np.random.default_rng(seed)
    ops: dict[str, OpStat] = {}
    minima: dict[tuple[str, str], float] = {}
    for op, make_args in _CASES.items():
        args = make_args(rng)
        for backend in registry.list_backends(op):
            _, fn = registry.resolve(op, backend)
            best = _min_seconds(fn, args, rounds)
            minima[(op, backend)] = best
            name = f"kernels.{op}.{backend}"
            ops[name] = OpStat(name=name, calls=rounds, total_seconds=best)

    from repro.tensor.kernels import sparse

    meta: dict = {
        "rounds": rounds,
        "seed": seed,
        "active_backend": registry.get_backend(),
        "op_overrides": registry.op_overrides(),
        "threads": registry.thread_count(),
        "cpu_count": os.cpu_count() or 1,
        "sparse_density_cutoff": sparse.density_cutoff(),
        "shapes": {
            "conv": [_CONV_N, _CONV_C, _CONV_F, _CONV_HW, _CONV_K, _CONV_PAD],
            "bn_relu": list(_BN_SHAPE),
        },
    }
    for meta_name, op in _SPEEDUP_METAS.items():
        ref = minima.get((op, registry.REFERENCE_BACKEND))
        fast = minima.get((op, "fast"))
        if ref and fast:
            meta[meta_name] = round(ref / fast, 4)
    for meta_name, op in _THREADED_METAS.items():
        ref = minima.get((op, registry.REFERENCE_BACKEND))
        threaded = minima.get((op, "threaded"))
        if ref and threaded:
            meta[meta_name] = round(ref / threaded, 4)
    return PerfReport(name="kernels", ops=ops, meta=meta)


def format_bench_table(report: PerfReport) -> str:
    """Human-readable per-op, per-backend table with reference ratios."""
    from repro.utils import format_table

    ref_us: dict[str, float] = {}
    for name, stat in report.ops.items():
        _, op, backend = name.split(".", 2)
        if backend == registry.REFERENCE_BACKEND:
            ref_us[op] = stat.total_seconds * 1e6
    rows = []
    for name, stat in sorted(report.ops.items()):
        _, op, backend = name.split(".", 2)
        us = stat.total_seconds * 1e6
        ref = ref_us.get(op)
        ratio = f"{ref / us:.2f}x" if ref and us else "-"
        rows.append([op, backend, f"{us:,.1f}", ratio])
    return format_table(["op", "backend", "best us", "vs reference"], rows)
