"""Convolution and pooling ops for the autograd engine.

The numerical work lives in :mod:`repro.tensor.kernels`: each op resolves
its forward/backward kernel pair from the dispatch registry at
construction time (so a forward's backward always runs on the backend the
forward used) and this module only wires the result into the tape.  The
``reference`` backend is the original im2col/col2im implementation
verbatim; ``fast`` runs the same math on pooled, persistent workspaces
with a batch-flattened GEMM for small spatial outputs.

All tensors are NCHW.  The workspace pool itself lives in
:mod:`repro.tensor.workspace` and is re-exported here for callers (and
tests) that predate the split.
"""

from __future__ import annotations

import numpy as np

from repro.profile import profiled
from repro.tensor import kernels
from repro.tensor.tensor import Tensor

# Re-exported pool API (the pool predates the kernels package and the
# sanitizer/tests address it as repro.tensor.conv.*).
from repro.tensor.workspace import (  # noqa: F401 - back-compat re-exports
    _POISONED,
    _WORKSPACE,
    _WORKSPACE_MAX_PER_KEY,
    WorkspaceUseAfterReleaseError,
    _acquire_workspace,
    clear_workspace_cache,
    poison_free_workspaces,
)

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "conv_out_size",
    "clear_workspace_cache",
    "poison_free_workspaces",
    "WorkspaceUseAfterReleaseError",
]


# repro: noqa[RPA005] shape arithmetic, not an op
def conv_out_size(in_size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (in_size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"empty conv output: in={in_size}, kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


@profiled("conv2d.forward")
def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, pad: int = 0) -> Tensor:
    """2-D convolution (cross-correlation) with optional bias.

    Parameters
    ----------
    x:
        Input tensor, shape ``(N, C_in, H, W)``.
    weight:
        Kernel tensor, shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-output-channel bias, shape ``(C_out,)``.
    stride, pad:
        Stride and symmetric zero-padding on both spatial axes.
    """
    _, c, h, w = x.shape
    _, c2, kh, kw = weight.shape
    if c != c2:
        raise ValueError(f"channel mismatch: input has {c}, kernel expects {c2}")
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)

    backend, fwd = kernels.resolve("conv2d_forward")
    _, bwd = kernels.resolve("conv2d_backward", backend)
    out_data, ctx = fwd(
        x.data, weight.data, None if bias is None else bias.data, stride, pad, oh, ow
    )

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g, out=None):
        with profiled("conv2d.backward"):
            gx, gw, gb = bwd(
                g,
                ctx,
                x.requires_grad,
                weight.requires_grad,
                bias is not None and bias.requires_grad,
            )
            if gb is not None:
                out._accumulate(bias, gb)
            if gw is not None:
                out._accumulate(weight, gw)
            if gx is not None:
                out._accumulate(x, gx)

    out = Tensor.from_op(out_data, parents, lambda g: backward(g, out))
    return out


@profiled("pool.max.forward")
def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = stride or kernel
    _, _, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, 0)
    ow = conv_out_size(w, kernel, stride, 0)

    backend, fwd = kernels.resolve("max_pool2d_forward")
    _, bwd = kernels.resolve("max_pool2d_backward", backend)
    out_data, ctx = fwd(x.data, kernel, stride, oh, ow)

    def backward(g, out=None):
        if x.requires_grad:
            with profiled("pool.max.backward"):
                out._accumulate(x, bwd(g, ctx))

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out


@profiled("pool.avg.forward")
def avg_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling over square windows."""
    stride = stride or kernel
    _, _, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, 0)
    ow = conv_out_size(w, kernel, stride, 0)

    backend, fwd = kernels.resolve("avg_pool2d_forward")
    _, bwd = kernels.resolve("avg_pool2d_backward", backend)
    out_data, ctx = fwd(x.data, kernel, stride, oh, ow)

    def backward(g, out=None):
        if x.requires_grad:
            with profiled("pool.avg.backward"):
                out._accumulate(x, bwd(g, ctx))

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out


@profiled("pool.gap.forward")
def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial axes: (N, C, H, W) -> (N, C)."""
    _, _, h, w = x.shape
    out_data = x.data.mean(axis=(2, 3))
    inv = 1.0 / (h * w)

    def backward(g, out=None):
        if x.requires_grad:
            # repro: noqa[RPA002] broadcast views are read-only; accumulate needs a real array
            out._accumulate(x, np.broadcast_to(g[:, :, None, None] * inv, x.shape).copy())

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out
