"""Convolution and pooling primitives for the autograd engine.

Convolution is implemented via explicit patch extraction ("im2col") with a
small Python loop over the kernel footprint (KH x KW iterations, each a
vectorized strided slice) and a single batched matmul.  The backward pass
mirrors it: a matmul for the weight gradient and a scatter-add ("col2im")
for the input gradient.  This keeps the hot path inside BLAS, per the
numpy-first performance guidance.

All tensors are NCHW.
"""

from __future__ import annotations

import sys
import threading

import numpy as np

from repro.profile import add_counter, profiled
from repro.tensor.tensor import Tensor

__all__ = [
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "conv_out_size",
    "clear_workspace_cache",
    "poison_free_workspaces",
    "WorkspaceUseAfterReleaseError",
]


# repro: noqa[RPA005] shape arithmetic, not an op
def conv_out_size(in_size: int, kernel: int, stride: int, pad: int) -> int:
    """Spatial output size of a convolution/pooling window."""
    out = (in_size + 2 * pad - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"empty conv output: in={in_size}, kernel={kernel}, stride={stride}, pad={pad}"
        )
    return out


# ---------------------------------------------------------------------- #
# col2im workspace cache
# ---------------------------------------------------------------------- #
#
# The col2im scatter-add — and the max/avg pooling backward scatters —
# need a zeroed buffer every backward call; for a conv net that is one
# large allocation per layer per step.  The buffers are reused via a small
# per-(shape, dtype) pool.  Reuse is only
# safe once no gradient array still aliases the buffer (the returned
# gradient is the buffer itself, or an interior view when pad > 0), so a
# buffer is handed out again only when its CPython refcount shows no
# outstanding holders.  Hits/misses are observable via the profiler
# counters ``conv.workspace_hits`` / ``conv.workspace_misses``.

_WORKSPACE_LOCK = threading.Lock()
_WORKSPACE: dict[tuple, list[np.ndarray]] = {}
_WORKSPACE_MAX_PER_KEY = 4
# ids of free buffers that the sanitizer has NaN-filled; consulted (and
# verified) the next time the pool hands the buffer out.
_POISONED: set[int] = set()


class WorkspaceUseAfterReleaseError(RuntimeError):
    """A released (poisoned) pool buffer was written before reacquisition.

    Raised only in sanitizer mode: :func:`poison_free_workspaces` NaN-fills
    every free buffer, so a stale holder *writing* into one is caught here
    at the next acquire, and a stale *reader* sees NaN instead of silently
    reading whatever gradient reused the memory.
    """


def clear_workspace_cache() -> None:  # repro: noqa[RPA005] cache admin, not an op
    """Drop all cached col2im workspaces (tests / memory pressure)."""
    with _WORKSPACE_LOCK:
        _WORKSPACE.clear()
        _POISONED.clear()


def poison_free_workspaces() -> int:  # repro: noqa[RPA005] sanitizer sweep, not an op
    """NaN-fill every currently-free pooled buffer (sanitizer mode).

    Returns the number of buffers poisoned.  Safe to call at any step
    boundary: only buffers whose refcount shows no outstanding holder are
    touched, and the pool re-zeroes buffers on acquisition anyway, so
    numerics are unchanged.  Observable via ``conv.workspace_poisoned``.
    """
    n = 0
    with _WORKSPACE_LOCK:
        for pool in _WORKSPACE.values():
            for buf in pool:
                # Same accounting as _acquire_workspace: pool entry + loop
                # variable + getrefcount argument == 3 refs when free.
                if sys.getrefcount(buf) == 3 and np.issubdtype(buf.dtype, np.floating):
                    buf.fill(np.nan)
                    _POISONED.add(id(buf))
                    n += 1
    if n:
        add_counter("conv.workspace_poisoned", n)
    return n


def _check_poison(buf: np.ndarray) -> None:
    """Verify a poisoned buffer is still all-NaN before handing it out."""
    _POISONED.discard(id(buf))
    if not np.isnan(buf).all():
        raise WorkspaceUseAfterReleaseError(
            f"pool buffer {buf.shape}/{buf.dtype} was written after release "
            "(poison pattern overwritten); some op holds a stale workspace "
            "reference past its backward pass"
        )


def _acquire_workspace(shape: tuple[int, ...], dtype) -> np.ndarray:
    """A zeroed array of ``shape``/``dtype``, reused across backward calls."""
    key = (shape, np.dtype(dtype).str)
    with _WORKSPACE_LOCK:
        pool = _WORKSPACE.setdefault(key, [])
        for buf in pool:
            # pool entry + loop variable + getrefcount argument == 3 refs
            # exactly when no caller (gradient array, view) holds it.
            if sys.getrefcount(buf) == 3:
                if id(buf) in _POISONED:
                    _check_poison(buf)
                buf.fill(0)
                add_counter("conv.workspace_hits")
                return buf
        buf = np.zeros(shape, dtype=dtype)
        if len(pool) < _WORKSPACE_MAX_PER_KEY:
            pool.append(buf)
        add_counter("conv.workspace_misses")
        return buf


@profiled("conv.im2col")
def _im2col(xp: np.ndarray, kh: int, kw: int, sh: int, sw: int, oh: int, ow: int) -> np.ndarray:
    """Extract conv patches: (N, C, H, W) -> (N, C*KH*KW, OH*OW)."""
    n, c = xp.shape[:2]
    # repro: noqa[RPA002] the patch buffer is retained by the backward
    # closure for the whole step, so refcount-gated pooling cannot reuse it
    cols = np.empty((n, c, kh, kw, oh, ow), dtype=xp.dtype)
    for i in range(kh):
        for j in range(kw):
            cols[:, :, i, j] = xp[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw]
    return cols.reshape(n, c * kh * kw, oh * ow)


@profiled("conv.col2im")
def _col2im(
    cols: np.ndarray,
    x_shape: tuple[int, ...],
    kh: int,
    kw: int,
    sh: int,
    sw: int,
    oh: int,
    ow: int,
    pad: int,
) -> np.ndarray:
    """Scatter-add patches back: inverse of :func:`_im2col` (gradient flow)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    xg = _acquire_workspace((n, c, hp, wp), cols.dtype)
    cols = cols.reshape(n, c, kh, kw, oh, ow)
    for i in range(kh):
        for j in range(kw):
            xg[:, :, i : i + sh * oh : sh, j : j + sw * ow : sw] += cols[:, :, i, j]
    if pad:
        xg = xg[:, :, pad:-pad, pad:-pad]
    return xg


@profiled("conv2d.forward")
def conv2d(x: Tensor, weight: Tensor, bias: Tensor | None, stride: int = 1, pad: int = 0) -> Tensor:
    """2-D convolution (cross-correlation) with optional bias.

    Parameters
    ----------
    x:
        Input tensor, shape ``(N, C_in, H, W)``.
    weight:
        Kernel tensor, shape ``(C_out, C_in, KH, KW)``.
    bias:
        Optional per-output-channel bias, shape ``(C_out,)``.
    stride, pad:
        Stride and symmetric zero-padding on both spatial axes.
    """
    n, c, h, w = x.shape
    f, c2, kh, kw = weight.shape
    if c != c2:
        raise ValueError(f"channel mismatch: input has {c}, kernel expects {c2}")
    oh = conv_out_size(h, kh, stride, pad)
    ow = conv_out_size(w, kw, stride, pad)

    xp = np.pad(x.data, ((0, 0), (0, 0), (pad, pad), (pad, pad))) if pad else x.data
    cols = _im2col(xp, kh, kw, stride, stride, oh, ow)  # (N, C*KH*KW, OH*OW)
    w_flat = weight.data.reshape(f, -1)  # (F, C*KH*KW)
    out_data = np.matmul(w_flat, cols).reshape(n, f, oh, ow)
    if bias is not None:
        out_data += bias.data.reshape(1, f, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g, out=None):
        with profiled("conv2d.backward"):
            g2 = g.reshape(n, f, oh * ow)  # (N, F, OH*OW)
            if bias is not None and bias.requires_grad:
                out._accumulate(bias, g2.sum(axis=(0, 2)))
            if weight.requires_grad:
                # Sum over batch of (F, OH*OW) @ (OH*OW, C*KH*KW)
                gw = np.einsum("nfo,nko->fk", g2, cols, optimize=True)
                out._accumulate(weight, gw.reshape(weight.shape))
            if x.requires_grad:
                gcols = np.matmul(w_flat.T, g2)  # (N, C*KH*KW, OH*OW)
                out._accumulate(x, _col2im(gcols, x.shape, kh, kw, stride, stride, oh, ow, pad))

    out = Tensor.from_op(out_data, parents, lambda g: backward(g, out))
    return out


@profiled("pool.max.forward")
def max_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, 0)
    ow = conv_out_size(w, kernel, stride, 0)

    # Stack window candidates along a new axis and take the argmax.
    # repro: noqa[RPA002] forward output staging; the argmax result aliases it
    cand = np.empty((kernel * kernel, n, c, oh, ow), dtype=x.dtype)
    for i in range(kernel):
        for j in range(kernel):
            cand[i * kernel + j] = x.data[
                :, :, i : i + stride * oh : stride, j : j + stride * ow : stride
            ]
    arg = cand.argmax(axis=0)  # (N, C, OH, OW), values in [0, K*K)
    out_data = np.take_along_axis(cand, arg[None], axis=0)[0]

    def backward(g, out=None):
        if x.requires_grad:
            with profiled("pool.max.backward"):
                xg = _acquire_workspace(x.shape, x.data.dtype)
                for win in range(kernel * kernel):
                    i, j = divmod(win, kernel)
                    mask = arg == win
                    xg[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += (
                        g * mask
                    )
                out._accumulate(x, xg)

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out


@profiled("pool.avg.forward")
def avg_pool2d(x: Tensor, kernel: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling over square windows."""
    stride = stride or kernel
    n, c, h, w = x.shape
    oh = conv_out_size(h, kernel, stride, 0)
    ow = conv_out_size(w, kernel, stride, 0)
    inv = 1.0 / (kernel * kernel)

    # repro: noqa[RPA002] op output buffer; escapes into the returned Tensor
    out_data = np.zeros((n, c, oh, ow), dtype=x.dtype)
    for i in range(kernel):
        for j in range(kernel):
            out_data += x.data[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride]
    out_data *= inv

    def backward(g, out=None):
        if x.requires_grad:
            with profiled("pool.avg.backward"):
                xg = _acquire_workspace(x.shape, x.data.dtype)
                gi = g * inv
                for i in range(kernel):
                    for j in range(kernel):
                        xg[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += gi
                out._accumulate(x, xg)

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out


@profiled("pool.gap.forward")
def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial axes: (N, C, H, W) -> (N, C)."""
    n, c, h, w = x.shape
    out_data = x.data.mean(axis=(2, 3))
    inv = 1.0 / (h * w)

    def backward(g, out=None):
        if x.requires_grad:
            # repro: noqa[RPA002] broadcast views are read-only; accumulate needs a real array
            out._accumulate(x, np.broadcast_to(g[:, :, None, None] * inv, x.shape).copy())

    out = Tensor.from_op(out_data, (x,), lambda g: backward(g, out))
    return out
