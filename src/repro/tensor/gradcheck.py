"""Gradient checking against central finite differences.

The public version of the verifier the test suite uses on every op: given
a scalar-valued function of some tensors, compare the autograd gradients
to central differences.  Useful for validating custom ops or layers built
on :mod:`repro.tensor`.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.tensor import Tensor

__all__ = ["gradcheck", "numerical_gradient"]


def numerical_gradient(
    f: Callable[[], Tensor], t: Tensor, eps: float = 1e-5
) -> np.ndarray:
    """Central-difference gradient of scalar ``f()`` w.r.t. ``t``.

    ``f`` must rebuild its graph on every call; ``t.data`` is perturbed in
    place and restored.
    """
    grad = np.zeros_like(t.data)
    it = np.nditer(t.data, flags=["multi_index"])
    for _ in it:
        i = it.multi_index
        old = t.data[i]
        t.data[i] = old + eps
        up = f().item()
        t.data[i] = old - eps
        down = f().item()
        t.data[i] = old
        grad[i] = (up - down) / (2 * eps)
    return grad


def gradcheck(
    f: Callable[[], Tensor],
    tensors: Sequence[Tensor],
    eps: float = 1e-5,
    tol: float = 1e-4,
    raise_on_fail: bool = True,
) -> bool:
    """Verify autograd gradients of scalar ``f()`` for each tensor.

    Parameters
    ----------
    f:
        Zero-argument callable returning a scalar Tensor; must rebuild the
        graph each call.
    tensors:
        Leaf tensors (``requires_grad=True``) to check.
    eps:
        Finite-difference step.
    tol:
        Maximum allowed relative error (scaled by the numerical gradient's
        max magnitude).
    raise_on_fail:
        Raise ``AssertionError`` with details instead of returning False.

    Returns
    -------
    True when all gradients match within tolerance.
    """
    if not tensors:
        raise ValueError("no tensors to check")
    for t in tensors:
        if not t.requires_grad:
            raise ValueError("all checked tensors must require grad")
        t.grad = None
    out = f()
    if out.size != 1:
        raise ValueError("f() must return a scalar tensor")
    out.backward()
    ok = True
    for idx, t in enumerate(tensors):
        if t.grad is None:
            msg = f"tensor #{idx}: no gradient reached it"
            if raise_on_fail:
                raise AssertionError(msg)
            return False
        num = numerical_gradient(f, t, eps=eps)
        scale = np.abs(num).max() + 1e-8
        err = np.abs(num - t.grad).max() / scale
        # NaN/inf in either gradient makes `err > tol` False — a NaN
        # backward must fail the check, not slip through the comparison.
        if err > tol or not np.isfinite(err):
            msg = f"tensor #{idx}: gradient mismatch, rel err {err:.3e} > {tol:.1e}"
            if raise_on_fail:
                raise AssertionError(msg)
            ok = False
        t.grad = None
    return ok
