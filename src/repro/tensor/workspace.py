"""Refcount-guarded workspace pool shared by the tensor kernels.

The col2im scatter-add — and the pooling forward/backward staging buffers,
im2col patch buffers, and GEMM outputs in the ``fast`` backend — need a
large temporary every call; for a conv net that is one allocation per layer
per step.  The buffers are reused via a small per-(shape, dtype) pool.

Reuse is only safe once no other array still aliases the buffer (the
returned gradient or forward output is the buffer itself, or an interior
view when pad > 0), so a buffer is handed out again only when its CPython
refcount shows no outstanding holders.  Buffers held by a backward closure
for a whole step are therefore skipped during that step and *reacquired on
the next one* — this is what makes im2col workspaces persistent across
training iterations.  Hits/misses are observable via the profiler counters
``conv.workspace_hits`` / ``conv.workspace_misses``.

Sanitizer mode (``REPRO_SANITIZE=1``) NaN-poisons free buffers between
steps via :func:`poison_free_workspaces`; a stale holder writing into one
is caught at the next acquire (:class:`WorkspaceUseAfterReleaseError`), and
a stale reader sees NaN instead of another op's data.  Kernels that fully
overwrite their buffer may pass ``zero=False`` to skip the clearing pass —
the poison pattern is then erased by the kernel's own writes, and any
region the kernel *fails* to write stays NaN and trips the gradient
tripwire downstream.
"""

from __future__ import annotations

import sys
import threading

import numpy as np

from repro.profile import add_counter

__all__ = [
    "acquire_workspace",
    "clear_workspace_cache",
    "poison_free_workspaces",
    "WorkspaceUseAfterReleaseError",
]

_WORKSPACE_LOCK = threading.Lock()
_WORKSPACE: dict[tuple, list[np.ndarray]] = {}
_WORKSPACE_MAX_PER_KEY = 4
# ids of free buffers that the sanitizer has NaN-filled; consulted (and
# verified) the next time the pool hands the buffer out.
_POISONED: set[int] = set()


class WorkspaceUseAfterReleaseError(RuntimeError):
    """A released (poisoned) pool buffer was written before reacquisition.

    Raised only in sanitizer mode: :func:`poison_free_workspaces` NaN-fills
    every free buffer, so a stale holder *writing* into one is caught here
    at the next acquire, and a stale *reader* sees NaN instead of silently
    reading whatever gradient reused the memory.
    """


def clear_workspace_cache() -> None:
    """Drop all cached workspaces (tests / memory pressure)."""
    with _WORKSPACE_LOCK:
        _WORKSPACE.clear()
        _POISONED.clear()


def poison_free_workspaces() -> int:
    """NaN-fill every currently-free pooled buffer (sanitizer mode).

    Returns the number of buffers poisoned.  Safe to call at any step
    boundary: only buffers whose refcount shows no outstanding holder are
    touched, and the pool re-zeroes (or fully overwrites, for
    ``zero=False`` acquisitions) buffers on reuse anyway, so numerics are
    unchanged.  Observable via ``conv.workspace_poisoned``.
    """
    n = 0
    with _WORKSPACE_LOCK:
        for pool in _WORKSPACE.values():
            for buf in pool:
                # Same accounting as acquire_workspace: pool entry + loop
                # variable + getrefcount argument == 3 refs when free.
                if sys.getrefcount(buf) == 3 and np.issubdtype(buf.dtype, np.floating):
                    buf.fill(np.nan)
                    _POISONED.add(id(buf))
                    n += 1
    if n:
        add_counter("conv.workspace_poisoned", n)
    return n


def _check_poison(buf: np.ndarray) -> None:
    """Verify a poisoned buffer is still all-NaN before handing it out."""
    _POISONED.discard(id(buf))
    if not np.isnan(buf).all():
        raise WorkspaceUseAfterReleaseError(
            f"pool buffer {buf.shape}/{buf.dtype} was written after release "
            "(poison pattern overwritten); some op holds a stale workspace "
            "reference past its backward pass"
        )


def acquire_workspace(shape: tuple[int, ...], dtype, zero: bool = True) -> np.ndarray:
    """An array of ``shape``/``dtype``, reused across calls once free.

    Parameters
    ----------
    shape, dtype:
        Requested buffer geometry (the pool key).
    zero:
        When True (default) the buffer is zero-filled before being handed
        out — required for scatter-add targets.  Kernels that overwrite
        every element (im2col, pooling candidate staging, GEMM ``out=``)
        pass False to skip the clearing pass; they then own full coverage
        of the buffer.
    """
    key = (shape, np.dtype(dtype).str)
    with _WORKSPACE_LOCK:
        pool = _WORKSPACE.setdefault(key, [])
        for buf in pool:
            # pool entry + loop variable + getrefcount argument == 3 refs
            # exactly when no caller (gradient array, view) holds it.
            if sys.getrefcount(buf) == 3:
                if id(buf) in _POISONED:
                    _check_poison(buf)
                if zero:
                    buf.fill(0)
                add_counter("conv.workspace_hits")
                return buf
        buf = np.zeros(shape, dtype=dtype)
        if len(pool) < _WORKSPACE_MAX_PER_KEY:
            pool.append(buf)
        add_counter("conv.workspace_misses")
        return buf


# Backwards-compatible private alias (pre-kernel-dispatch call sites and
# tests import the underscored name from repro.tensor.conv).
_acquire_workspace = acquire_workspace
