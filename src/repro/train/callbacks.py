"""Training callbacks.

Callbacks observe the training loop at epoch and step boundaries.  The
reproduction uses them for the paper's instrumentation: freezing DropBack's
tracked set at a chosen epoch, recording weight-diffusion distance (Fig. 5),
snapshotting weights for the PCA trajectories (Fig. 6), and logging
tracked-set churn (Fig. 2).
"""

from __future__ import annotations

from pathlib import Path
from time import perf_counter
from typing import TYPE_CHECKING

import numpy as np

from repro.profile import OpStat, PerfReport, disable, enable, is_enabled, snapshot
from repro.tensor import kernels

if TYPE_CHECKING:  # pragma: no cover
    from repro.train.trainer import Trainer

__all__ = [
    "Callback",
    "FreezeCallback",
    "WeightSnapshotCallback",
    "LambdaCallback",
    "ProfilerCallback",
]


class Callback:
    """Base class; override any subset of the hooks."""

    def on_train_begin(self, trainer: "Trainer") -> None: ...

    def on_epoch_begin(self, trainer: "Trainer", epoch: int) -> None: ...

    def on_backward_end(self, trainer: "Trainer", step: int) -> None:
        """After ``loss.backward()``, before the optimizer consumes grads.

        The hook the sanitizer's NaN/inf tripwire uses: gradients are
        fully accumulated but not yet folded into the tracked-set
        selection, so a poisoned value can be attributed to its source.
        """
        ...

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None: ...

    def on_epoch_end(self, trainer: "Trainer", epoch: int, logs: dict) -> None: ...

    def on_train_end(self, trainer: "Trainer") -> None: ...


class FreezeCallback(Callback):
    """Freeze a DropBack optimizer's tracked set after ``freeze_epoch`` epochs.

    Matches the paper's "Freeze Epoch" column in Table 1: the tracked set is
    re-selected every step up to and including epoch ``freeze_epoch - 1``
    (0-based), then frozen.
    """

    def __init__(self, freeze_epoch: int):
        if freeze_epoch < 1:
            raise ValueError(f"freeze_epoch must be >= 1, got {freeze_epoch}")
        self.freeze_epoch = int(freeze_epoch)

    def on_epoch_end(self, trainer: "Trainer", epoch: int, logs: dict) -> None:
        opt = trainer.optimizer
        if epoch + 1 == self.freeze_epoch and hasattr(opt, "freeze") and not opt.frozen:
            opt.freeze()
            logs["froze_tracked_set"] = True


class WeightSnapshotCallback(Callback):
    """Record a flat copy of all weights at a step cadence.

    Feeds the diffusion (Fig. 5) and PCA-trajectory (Fig. 6) analyses.
    ``log_spaced=True`` snapshots on a log-spaced step grid, matching the
    paper's log-scale x-axis while bounding memory.
    """

    def __init__(self, every: int = 1, log_spaced: bool = False, max_snapshots: int = 200):
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        self.every = int(every)
        self.log_spaced = bool(log_spaced)
        self.max_snapshots = int(max_snapshots)
        self.steps: list[int] = []
        self.snapshots: list[np.ndarray] = []
        self._next_log_step = 1

    def _flat_weights(self, trainer: "Trainer") -> np.ndarray:
        return np.concatenate([p.data.reshape(-1) for p in trainer.model.parameters()])

    def on_train_begin(self, trainer: "Trainer") -> None:
        self.steps.append(0)
        self.snapshots.append(self._flat_weights(trainer))

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        if len(self.snapshots) >= self.max_snapshots:
            return
        if self.log_spaced:
            if step + 1 >= self._next_log_step:
                self.steps.append(step + 1)
                self.snapshots.append(self._flat_weights(trainer))
                self._next_log_step = max(self._next_log_step + 1, int(self._next_log_step * 1.3))
        elif (step + 1) % self.every == 0:
            self.steps.append(step + 1)
            self.snapshots.append(self._flat_weights(trainer))

    def stacked(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(steps, snapshot_matrix)`` with one row per snapshot."""
        return np.asarray(self.steps), np.stack(self.snapshots)


class ProfilerCallback(Callback):
    """Trace a training run through the :mod:`repro.profile` registry.

    On ``on_train_begin`` the callback (optionally) enables profiling and
    snapshots the registry; on ``on_train_end`` it folds the *delta* — only
    what this run recorded — into a :class:`~repro.profile.PerfReport`
    available as :attr:`report`, restoring the previous enable state.  Epoch
    wall time and step counts are traced on the way (``epoch_trace`` in the
    report metadata), so a report carries op-level, step-level, and
    epoch-level cost in one JSON document.

    Parameters
    ----------
    report_name:
        Name stamped into the report (and the default file stem).
    enable:
        Turn profiling on for the duration of the run (default True).  Pass
        False to only *observe* — the callback then reports whatever ops
        record under the caller's own enable window.
    emit_path:
        Optional path; when given, the report is written there as JSON on
        ``on_train_end``.
    meta:
        Extra key/values merged into the report metadata (config name, ...).
    """

    def __init__(
        self,
        report_name: str = "train",
        enable: bool = True,
        emit_path: str | Path | None = None,
        meta: dict | None = None,
    ):
        self.report_name = report_name
        self.enable = bool(enable)
        self.emit_path = Path(emit_path) if emit_path is not None else None
        self.meta = dict(meta or {})
        self.report: PerfReport | None = None
        self.epoch_trace: list[dict] = []
        self._was_enabled = False
        self._baseline: dict = {"ops": {}, "counters": {}}
        self._train_t0 = 0.0
        self._epoch_t0 = 0.0
        self._steps = 0
        self._epoch_steps = 0

    def on_train_begin(self, trainer: "Trainer") -> None:
        self._was_enabled = is_enabled()
        if self.enable:
            enable()
        self._baseline = snapshot()
        self.epoch_trace = []
        self._steps = 0
        self._train_t0 = perf_counter()

    def on_epoch_begin(self, trainer: "Trainer", epoch: int) -> None:
        self._epoch_t0 = perf_counter()
        self._epoch_steps = 0

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        self._steps += 1
        self._epoch_steps += 1

    def on_epoch_end(self, trainer: "Trainer", epoch: int, logs: dict) -> None:
        self.epoch_trace.append(
            {
                "epoch": epoch,
                "seconds": perf_counter() - self._epoch_t0,
                "steps": self._epoch_steps,
            }
        )

    def on_train_end(self, trainer: "Trainer") -> None:
        wall = perf_counter() - self._train_t0
        snap = snapshot()
        ops: dict[str, OpStat] = {}
        for name, raw in snap["ops"].items():
            base = self._baseline["ops"].get(name, {})
            calls = raw["calls"] - base.get("calls", 0)
            if calls <= 0:
                continue
            ops[name] = OpStat(
                name=name,
                calls=calls,
                total_seconds=raw["total_seconds"] - base.get("total_seconds", 0.0),
                bytes_allocated=raw["bytes_allocated"] - base.get("bytes_allocated", 0),
            )
        counters = {
            name: value - self._baseline["counters"].get(name, 0)
            for name, value in snap["counters"].items()
            if value - self._baseline["counters"].get(name, 0)
        }
        meta = {
            "wall_seconds": wall,
            "steps": self._steps,
            "epochs": len(self.epoch_trace),
            "epoch_trace": self.epoch_trace,
            "backend": kernels.get_backend(),
            "threads": kernels.thread_count(),
            # Data-parallel rank count (ParallelTrainer); 1 for Trainer.
            "workers": int(getattr(trainer, "workers", 1)),
            **self.meta,
        }
        # Sanitized runs carry checker overhead in every op; stamp them so
        # the perf gate (scripts/check_perf_report.py) excludes the report.
        if getattr(trainer, "sanitize", False):
            meta["sanitize"] = True
        self.report = PerfReport(
            name=self.report_name, ops=ops, counters=counters, meta=meta
        )
        if self.enable and not self._was_enabled:
            disable()
        if self.emit_path is not None:
            self.report.write(self.emit_path)


class LambdaCallback(Callback):
    """Wrap ad-hoc functions as a callback."""

    def __init__(self, on_epoch_end=None, on_step_end=None, on_train_begin=None):
        self._epoch_end = on_epoch_end
        self._step_end = on_step_end
        self._train_begin = on_train_begin

    def on_train_begin(self, trainer: "Trainer") -> None:
        if self._train_begin:
            self._train_begin(trainer)

    def on_step_end(self, trainer: "Trainer", step: int, loss: float) -> None:
        if self._step_end:
            self._step_end(trainer, step, loss)

    def on_epoch_end(self, trainer: "Trainer", epoch: int, logs: dict) -> None:
        if self._epoch_end:
            self._epoch_end(trainer, epoch, logs)
