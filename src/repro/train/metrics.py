"""Evaluation metrics."""

from __future__ import annotations

import numpy as np

from repro.data import DataLoader, Dataset
from repro.nn import Module
from repro.tensor import Tensor, no_grad

__all__ = ["accuracy", "error_rate", "evaluate"]


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of argmax predictions matching integer labels."""
    preds = np.asarray(logits).argmax(axis=-1)
    return float((preds == np.asarray(labels)).mean())


def error_rate(logits: np.ndarray, labels: np.ndarray) -> float:
    """1 - accuracy (the paper reports validation *error*)."""
    return 1.0 - accuracy(logits, labels)


def evaluate(model: Module, data: Dataset | DataLoader, batch_size: int = 256) -> float:
    """Validation accuracy of a model over a dataset (eval mode, no grad)."""
    loader = (
        data
        if isinstance(data, DataLoader)
        else DataLoader(data, batch_size=batch_size, shuffle=False)
    )
    was_training = model.training
    model.eval()
    correct = 0
    total = 0
    with no_grad():
        for xb, yb in loader:
            logits = model(Tensor(xb)).numpy()
            correct += int((logits.argmax(axis=-1) == yb).sum())
            total += len(yb)
    model.train(was_training)
    if total == 0:
        raise ValueError("empty evaluation dataset")
    return correct / total
