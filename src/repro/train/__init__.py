"""Training loop, metrics, and callbacks."""

from repro.train.callbacks import (
    Callback,
    FreezeCallback,
    LambdaCallback,
    ProfilerCallback,
    WeightSnapshotCallback,
)
from repro.train.metrics import accuracy, error_rate, evaluate
from repro.train.trainer import History, Trainer

__all__ = [
    "Trainer",
    "History",
    "Callback",
    "FreezeCallback",
    "WeightSnapshotCallback",
    "LambdaCallback",
    "ProfilerCallback",
    "accuracy",
    "error_rate",
    "evaluate",
]
