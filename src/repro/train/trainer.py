"""Training loop.

Reproduces the paper's protocol: epoch-based SGD training with a learning
rate schedule, per-epoch validation, and best-epoch selection ("the best
epoch was chosen by highest validation accuracy after 5 epochs of no
improvement").  Instrumentation hooks in via :mod:`repro.train.callbacks`.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

import numpy as np

from repro.data import DataLoader, Dataset
from repro.nn import Module
from repro.optim import Optimizer, Schedule
from repro.profile import profiled
from repro.tensor import Tensor, cross_entropy
from repro.train.callbacks import Callback
from repro.train.metrics import evaluate

__all__ = ["Trainer", "History"]


@dataclass
class History:
    """Per-epoch training record."""

    train_loss: list[float] = field(default_factory=list)
    val_accuracy: list[float] = field(default_factory=list)
    lr: list[float] = field(default_factory=list)
    epoch_seconds: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_accuracy: float = 0.0
    stopped_early: bool = False
    diverged: bool = False

    @property
    def best_val_error(self) -> float:
        """Validation error at the best epoch (the paper's headline metric)."""
        return 1.0 - self.best_val_accuracy

    @property
    def epochs_run(self) -> int:
        return len(self.val_accuracy)


class Trainer:
    """Run supervised training with validation-based best-epoch selection.

    Parameters
    ----------
    model:
        Finalized model.
    optimizer:
        Any :class:`~repro.optim.Optimizer` (SGD, DropBack, ...).
    loss_fn:
        Callable ``(logits, labels) -> Tensor``; defaults to cross-entropy.
        Variational-dropout training passes a closure adding the KL term.
    schedule:
        Optional LR schedule applied at each epoch start.
    callbacks:
        Observers (freeze, snapshots, ...).
    patience:
        Stop after this many epochs without validation improvement
        (paper: 5 for MNIST).  ``None`` disables early stopping.
    stop_on_divergence:
        Abort the run (setting ``history.diverged``) when the training
        loss becomes NaN/inf — the failure mode variational dropout shows
        on the dense networks (Table 3).
    sanitize:
        Run under the runtime sanitizers (plane-integrity checks, NaN/inf
        gradient tripwire, workspace-pool poisoning — see
        :mod:`repro.analyze.sanitize`).  ``None`` (the default) defers to
        the ``REPRO_SANITIZE`` environment variable.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        loss_fn=None,
        schedule: Schedule | None = None,
        callbacks: list[Callback] | None = None,
        patience: int | None = None,
        stop_on_divergence: bool = True,
        sanitize: bool | None = None,
    ):
        self.model = model
        self.optimizer = optimizer
        self.loss_fn = loss_fn or cross_entropy
        self.schedule = schedule
        self.callbacks = list(callbacks or [])
        self.patience = patience
        self.stop_on_divergence = bool(stop_on_divergence)
        if sanitize is None:
            sanitize = os.environ.get("REPRO_SANITIZE", "").strip().lower() in (
                "1", "true", "on", "yes",
            )
        self.sanitize = bool(sanitize)
        if self.sanitize:
            # Imported lazily: the sanitizers are opt-in tooling, and the
            # analyze package depends on train.callbacks (not vice versa).
            from repro.analyze import sanitize as _sanitize

            self.callbacks.extend(_sanitize.sanitizer_callbacks())
            _sanitize.install_detach_guard()
        self.history = History()
        self.global_step = 0

    def fit(
        self,
        train_loader: DataLoader,
        val_data: Dataset | DataLoader,
        epochs: int,
        verbose: bool = False,
    ) -> History:
        """Train for up to ``epochs`` epochs; returns the history."""
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        for cb in self.callbacks:
            cb.on_train_begin(self)

        epochs_since_best = 0
        for epoch in range(epochs):
            epoch_start = time.perf_counter()
            if self.schedule is not None:
                self.optimizer.lr = self.schedule(epoch)
            for cb in self.callbacks:
                cb.on_epoch_begin(self, epoch)

            self.model.train()
            losses = []
            for xb, yb in train_loader:
                self.optimizer.zero_grad()
                with profiled("trainer.forward"):
                    logits = self.model(Tensor(xb))
                    loss = self.loss_fn(logits, yb)
                with profiled("trainer.backward"):
                    loss.backward()
                for cb in self.callbacks:
                    cb.on_backward_end(self, self.global_step)
                with profiled("trainer.optimizer_step"):
                    self.optimizer.step()
                loss_val = loss.item()
                losses.append(loss_val)
                if self.stop_on_divergence and not np.isfinite(loss_val):
                    self.history.diverged = True
                    break
                for cb in self.callbacks:
                    cb.on_step_end(self, self.global_step, loss_val)
                self.global_step += 1
            if self.history.diverged:
                for cb in self.callbacks:
                    cb.on_train_end(self)
                return self.history

            with profiled("trainer.evaluate"):
                val_acc = evaluate(self.model, val_data)
            logs: dict = {
                "epoch": epoch,
                "train_loss": float(np.mean(losses)) if losses else float("nan"),
                "val_accuracy": val_acc,
                "lr": self.optimizer.lr,
            }
            # DropBack exposes a running churn total that survives any
            # swap_history bound; surface it for epoch-level callbacks.
            total_swaps = getattr(self.optimizer, "total_swaps", None)
            if total_swaps is not None:
                logs["total_swaps"] = int(total_swaps)
            self.history.train_loss.append(logs["train_loss"])
            self.history.val_accuracy.append(val_acc)
            self.history.lr.append(self.optimizer.lr)
            self.history.epoch_seconds.append(time.perf_counter() - epoch_start)

            if val_acc > self.history.best_val_accuracy:
                self.history.best_val_accuracy = val_acc
                self.history.best_epoch = epoch
                epochs_since_best = 0
            else:
                epochs_since_best += 1

            for cb in self.callbacks:
                cb.on_epoch_end(self, epoch, logs)
            if verbose:
                print(
                    f"epoch {epoch:3d}  loss {logs['train_loss']:.4f}  "
                    f"val_acc {val_acc:.4f}  lr {self.optimizer.lr:.4f}"
                )

            if self.patience is not None and epochs_since_best >= self.patience:
                self.history.stopped_early = True
                break

        for cb in self.callbacks:
            cb.on_train_end(self)
        return self.history
