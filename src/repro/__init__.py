"""DropBack: continuous pruning during training.

A full reproduction of "Full Deep Neural Network Training on a Pruned
Weight Budget" (Golub, Lemieux, Lis — MLSys 2019), built from scratch on
numpy: autograd engine, layer/model zoo, synthetic datasets, the DropBack
optimizer, three baseline pruning techniques, and the paper's analysis and
energy tooling.

Quickstart::

    from repro import DropBack, Trainer, DataLoader
    from repro.models import lenet_300_100
    from repro.data import synth_mnist
    from repro.optim import BoundedStepDecay

    train, test = synth_mnist()
    model = lenet_300_100().finalize(seed=42)
    opt = DropBack(model, k=20_000, lr=0.4)
    trainer = Trainer(model, opt, schedule=BoundedStepDecay(0.4), patience=5)
    history = trainer.fit(DataLoader(train, batch_size=64), test, epochs=100)
    print(history.best_val_error, opt.compression_ratio)
"""

from repro import profile
from repro.core import DropBack, HeapSelector, SortSelector
from repro.data import DataLoader, Dataset, synth_cifar, synth_mnist
from repro.energy import EnergyModel
from repro.nn import Module, Parameter
from repro.optim import SGD, BoundedStepDecay, ConstantLR, StepDecay
from repro.profile import PerfReport
from repro.tensor import Tensor, no_grad
from repro.train import FreezeCallback, ProfilerCallback, Trainer, evaluate

__version__ = "1.0.0"

__all__ = [
    "DropBack",
    "SortSelector",
    "HeapSelector",
    "SGD",
    "ConstantLR",
    "StepDecay",
    "BoundedStepDecay",
    "Tensor",
    "no_grad",
    "Module",
    "Parameter",
    "Dataset",
    "DataLoader",
    "synth_mnist",
    "synth_cifar",
    "Trainer",
    "FreezeCallback",
    "ProfilerCallback",
    "evaluate",
    "EnergyModel",
    "profile",
    "PerfReport",
    "__version__",
]
