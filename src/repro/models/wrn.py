"""Wide Residual Networks (Zagoruyko & Komodakis, 2016).

The paper's third CIFAR model is WRN-28-10 (36.5M parameters), chosen
because wide residual nets are notoriously hard to prune (>2x compression
loses significant accuracy with prior techniques; Table 3).

WRN-d-k has depth ``d = 6n + 4`` (n blocks per group, 3 groups) and widening
factor ``k``.  We implement the pre-activation basic-block variant used in
the original, fully parameterized so that scaled-down instances (e.g.
WRN-10-2) run on CPU while WRN-28-10 itself is constructible and its
parameter count verified against the paper.
"""

from __future__ import annotations

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Identity,
    Linear,
    Module,
)
from repro.tensor import Tensor

__all__ = ["WideResNet", "wide_resnet", "wrn_28_10", "wrn_16_4", "wrn_10_2", "wrn_10_1"]


class _WideBlock(Module):
    """Pre-activation residual block: BN-ReLU-Conv3x3-BN-ReLU-Conv3x3 + skip."""

    def __init__(self, in_ch: int, out_ch: int, stride: int):
        super().__init__()
        self.bn1 = BatchNorm2d(in_ch)
        self.conv1 = Conv2d(in_ch, out_ch, 3, stride=stride, padding=1, bias=False, init="he")
        self.bn2 = BatchNorm2d(out_ch)
        self.conv2 = Conv2d(out_ch, out_ch, 3, stride=1, padding=1, bias=False, init="he")
        self.equal_io = in_ch == out_ch and stride == 1
        self.shortcut = (
            Identity()
            if self.equal_io
            else Conv2d(in_ch, out_ch, 1, stride=stride, bias=False, init="he")
        )

    def forward(self, x: Tensor) -> Tensor:
        pre = self.bn1(x).relu()
        # Pre-activation feeds both branches when the shortcut is projected.
        out = self.conv1(pre)
        out = self.conv2(self.bn2(out).relu())
        skip = x if self.equal_io else self.shortcut(pre)
        return out + skip


class WideResNet(Module):
    """WRN-depth-widen for small (CIFAR-style) images.

    Parameters
    ----------
    depth:
        Total depth; must satisfy ``depth = 6n + 4``.
    widen:
        Widening factor ``k`` (channel widths 16k/32k/64k).
    num_classes:
        Output classes.
    in_channels:
        Input image channels.
    base_width:
        Stem width before widening (16 in the paper).
    """

    def __init__(
        self,
        depth: int = 28,
        widen: int = 10,
        num_classes: int = 10,
        in_channels: int = 3,
        base_width: int = 16,
    ):
        super().__init__()
        if (depth - 4) % 6 != 0:
            raise ValueError(f"WRN depth must be 6n+4, got {depth}")
        n = (depth - 4) // 6
        widths = [base_width, base_width * widen, 2 * base_width * widen, 4 * base_width * widen]

        self.depth = depth
        self.widen = widen
        self.stem = Conv2d(in_channels, widths[0], 3, padding=1, bias=False, init="he")
        blocks: list[Module] = []
        in_ch = widths[0]
        for group, width in enumerate(widths[1:]):
            for b in range(n):
                stride = 2 if (group > 0 and b == 0) else 1
                blocks.append(_WideBlock(in_ch, width, stride))
                in_ch = width
        self.blocks = blocks
        self.bn_final = BatchNorm2d(in_ch)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(in_ch, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        out = self.bn_final(out).relu()
        return self.fc(self.pool(out))


def wide_resnet(depth: int, widen: int, num_classes: int = 10, in_channels: int = 3) -> WideResNet:
    """Construct a WRN-depth-widen model."""
    return WideResNet(depth=depth, widen=widen, num_classes=num_classes, in_channels=in_channels)


def wrn_28_10(num_classes: int = 10) -> WideResNet:
    """The paper's WRN-28-10 (~36.5M parameters)."""
    return wide_resnet(28, 10, num_classes=num_classes)


def wrn_16_4(num_classes: int = 10) -> WideResNet:
    """Mid-size WRN for moderate-cost experiments (~2.7M parameters)."""
    return wide_resnet(16, 4, num_classes=num_classes)


def wrn_10_2(num_classes: int = 10, in_channels: int = 3) -> WideResNet:
    """CPU-scale WRN used by the bench harness (~0.3M parameters)."""
    return wide_resnet(10, 2, num_classes=num_classes, in_channels=in_channels)


def wrn_10_1(num_classes: int = 10, in_channels: int = 3) -> WideResNet:
    """Smallest WRN (test-scale)."""
    return wide_resnet(10, 1, num_classes=num_classes, in_channels=in_channels)
