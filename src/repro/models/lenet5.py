"""LeNet-5-style convolutional MNIST models, including a PReLU variant.

The paper highlights that DropBack "works out-of-the-box for layers like
Batch Normalization or Parametric ReLU, where the initialization strategy
is typically a constant value".  The MLPs in the main experiments have
neither, so this module provides convolutional MNIST models that do:

* :func:`lenet5` — the classic conv-pool-conv-pool-fc stack (LeCun et al.,
  1998), ReLU activations;
* :func:`lenet5_prelu` — same topology with trainable per-channel PReLU
  slopes (constant-0.25 init, hence regenerable);
* :func:`lenet5_bn` — with BatchNorm after each convolution.
"""

from __future__ import annotations

from repro.nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MaxPool2d,
    PReLU,
    ReLU,
    Sequential,
)

__all__ = ["lenet5", "lenet5_prelu", "lenet5_bn"]


def _stack(act_factory, with_bn: bool, in_channels: int, num_classes: int) -> Sequential:
    layers: list = [Conv2d(in_channels, 6, 5, padding=2)]
    if with_bn:
        layers.append(BatchNorm2d(6))
    layers += [act_factory(6), MaxPool2d(2), Conv2d(6, 16, 5)]
    if with_bn:
        layers.append(BatchNorm2d(16))
    layers += [
        act_factory(16),
        MaxPool2d(2),
        Flatten(),
        Linear(16 * 5 * 5, 120),
        act_factory(120),
        Linear(120, 84),
        act_factory(84),
        Linear(84, num_classes),
    ]
    return Sequential(*layers)


def lenet5(in_channels: int = 1, num_classes: int = 10) -> Sequential:
    """LeNet-5 with ReLU activations (~61k parameters on 28x28 inputs)."""
    return _stack(lambda c: ReLU(), with_bn=False, in_channels=in_channels,
                  num_classes=num_classes)


def lenet5_prelu(in_channels: int = 1, num_classes: int = 10) -> Sequential:
    """LeNet-5 with per-channel PReLU — every slope is DropBack-prunable."""
    return _stack(lambda c: PReLU(c), with_bn=False, in_channels=in_channels,
                  num_classes=num_classes)


def lenet5_bn(in_channels: int = 1, num_classes: int = 10) -> Sequential:
    """LeNet-5 with BatchNorm after each convolution."""
    return _stack(lambda c: ReLU(), with_bn=True, in_channels=in_channels,
                  num_classes=num_classes)
