"""VGG-S: the paper's reduced VGG-16 for CIFAR-10.

The paper describes VGG-S as "a reduced VGG-16-like model with dropout,
batch normalization, and two FC layers of 512 neurons including the output
layer (a total of 15M parameters vs. the 138M of VGG-16)".  That is the
standard VGG-16 convolutional stack (13 conv layers, config D) operating on
32x32 inputs, followed by a single 512-unit FC layer and the 10-way output —
the giant 4096-unit FC layers of the original are gone, which is where the
parameter count drops from 138M to ~15M.

:func:`vgg_s` builds the paper-exact model (14,982,474 params by default);
``width_mult`` scales every channel count for CPU-sized bench runs while
preserving the architecture shape.
"""

from __future__ import annotations

from repro.nn import (
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)

__all__ = ["vgg_s", "VGG16_CONFIG"]

#: VGG-16 configuration "D": channel widths with 'M' = 2x2 max-pool.
VGG16_CONFIG: tuple = (
    64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"
)


def vgg_s(
    num_classes: int = 10,
    in_channels: int = 3,
    width_mult: float = 1.0,
    fc_width: int | None = None,
    dropout_p: float = 0.5,
    config: tuple = VGG16_CONFIG,
) -> Sequential:
    """Build VGG-S (reduced VGG-16 with BN and dropout).

    Parameters
    ----------
    num_classes:
        Output classes (10 for CIFAR-10).
    in_channels:
        Input channels (3 for CIFAR).
    width_mult:
        Multiplier on all channel widths; ``1.0`` reproduces the paper's
        ~15M-parameter model, smaller values give CPU-scale models with the
        same depth/shape.
    fc_width:
        Width of the penultimate FC layer; defaults to the (scaled) final
        conv width, 512 at ``width_mult=1``.
    dropout_p:
        Dropout probability before each FC layer.
    config:
        Conv stack description (ints = conv widths, ``"M"`` = max-pool).
    """
    layers: list = []
    prev = in_channels
    scaled_final = 0
    for item in config:
        if item == "M":
            layers.append(MaxPool2d(2))
            continue
        width = max(1, int(round(item * width_mult)))
        layers += [Conv2d(prev, width, 3, padding=1, bias=False), BatchNorm2d(width), ReLU()]
        prev = width
        scaled_final = width
    fc = fc_width if fc_width is not None else scaled_final
    layers += [
        Flatten(),
        Dropout(dropout_p),
        Linear(prev, fc),
        BatchNorm1d(fc),
        ReLU(),
        Dropout(dropout_p),
        Linear(fc, num_classes),
    ]
    return Sequential(*layers)
