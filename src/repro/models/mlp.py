"""MLP models used in the paper's MNIST experiments.

* :func:`lenet_300_100` — the classic 784-300-100-10 MLP (LeCun et al.,
  1998): 266,610 parameters ("267k" / "266,600" in the paper).
* :func:`mnist_100_100` — the smaller 784-100-100-10 MLP the paper calls
  MNIST-100-100: 89,610 parameters, matching Table 2's per-layer counts
  (fc1 78,500 / fc2 10,100 / fc3 1,010).
"""

from __future__ import annotations

from repro.nn import Flatten, Linear, ReLU, Sequential

__all__ = ["mlp", "lenet_300_100", "mnist_100_100"]


def mlp(in_features: int, hidden: tuple[int, ...], num_classes: int) -> Sequential:
    """Fully connected ReLU network with the given hidden widths.

    Parameters
    ----------
    in_features:
        Flattened input dimensionality (784 for 28x28 MNIST images).
    hidden:
        Hidden layer widths, e.g. ``(300, 100)``.
    num_classes:
        Output logits.
    """
    layers: list = [Flatten()]
    prev = in_features
    for width in hidden:
        layers += [Linear(prev, width), ReLU()]
        prev = width
    layers.append(Linear(prev, num_classes))
    return Sequential(*layers)


def lenet_300_100(in_features: int = 784, num_classes: int = 10) -> Sequential:
    """LeNet-300-100: the paper's larger MNIST MLP (266,610 params)."""
    return mlp(in_features, (300, 100), num_classes)


def mnist_100_100(in_features: int = 784, num_classes: int = 10) -> Sequential:
    """MNIST-100-100: the paper's smaller MNIST MLP (89,610 params)."""
    return mlp(in_features, (100, 100), num_classes)
