"""Model zoo: the paper's five evaluation networks plus scaled variants."""

from repro.models.densenet import (
    DenseNet,
    densenet,
    densenet_2_7m,
    densenet_bc_100_12,
    densenet_tiny,
)
from repro.models.lenet5 import lenet5, lenet5_bn, lenet5_prelu
from repro.models.mlp import lenet_300_100, mlp, mnist_100_100
from repro.models.vgg import VGG16_CONFIG, vgg_s
from repro.models.wrn import (
    WideResNet,
    wide_resnet,
    wrn_10_1,
    wrn_10_2,
    wrn_16_4,
    wrn_28_10,
)

__all__ = [
    "mlp",
    "lenet_300_100",
    "mnist_100_100",
    "lenet5",
    "lenet5_prelu",
    "lenet5_bn",
    "vgg_s",
    "VGG16_CONFIG",
    "WideResNet",
    "wide_resnet",
    "wrn_28_10",
    "wrn_16_4",
    "wrn_10_2",
    "wrn_10_1",
    "DenseNet",
    "densenet",
    "densenet_2_7m",
    "densenet_bc_100_12",
    "densenet_tiny",
]
