"""Densely Connected Convolutional Networks (Huang et al., 2016).

The paper's second hard-to-prune CIFAR model: "Densenet 2.7M".  DenseNet
variants differ in depth L, growth rate k, bottleneck (BC) usage, and
transition compression.  A non-bottleneck DenseNet with L=40 layers and
growth k=20 lands at ~2.7M parameters on CIFAR-10, matching the paper's
baseline size; the constructor is fully parameterized so both that config
and CPU-scale versions (e.g. L=16, k=8) are available.
"""

from __future__ import annotations

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    GlobalAvgPool2d,
    Linear,
    Module,
)
from repro.tensor import Tensor, concat

__all__ = ["DenseNet", "densenet", "densenet_2_7m", "densenet_bc_100_12", "densenet_tiny"]


class _DenseLayer(Module):
    """BN-ReLU-Conv(3x3) producing ``growth`` new feature maps.

    With ``bottleneck=True`` a BN-ReLU-Conv(1x1) reducing to ``4 * growth``
    channels precedes the 3x3 convolution (the "B" in DenseNet-BC).
    """

    def __init__(self, in_ch: int, growth: int, bottleneck: bool):
        super().__init__()
        self.bottleneck = bottleneck
        if bottleneck:
            inter = 4 * growth
            self.bn1 = BatchNorm2d(in_ch)
            self.conv1 = Conv2d(in_ch, inter, 1, bias=False, init="he")
            self.bn2 = BatchNorm2d(inter)
            self.conv2 = Conv2d(inter, growth, 3, padding=1, bias=False, init="he")
        else:
            self.bn1 = BatchNorm2d(in_ch)
            self.conv1 = Conv2d(in_ch, growth, 3, padding=1, bias=False, init="he")

    def forward(self, x: Tensor) -> Tensor:
        out = self.conv1(self.bn1(x).relu())
        if self.bottleneck:
            out = self.conv2(self.bn2(out).relu())
        return concat([x, out], axis=1)


class _Transition(Module):
    """BN-ReLU-Conv(1x1) channel compression followed by 2x2 average pool."""

    def __init__(self, in_ch: int, out_ch: int):
        super().__init__()
        self.bn = BatchNorm2d(in_ch)
        self.conv = Conv2d(in_ch, out_ch, 1, bias=False, init="he")
        self.pool = AvgPool2d(2)

    def forward(self, x: Tensor) -> Tensor:
        return self.pool(self.conv(self.bn(x).relu()))


class DenseNet(Module):
    """DenseNet for small images, 3 dense blocks.

    Parameters
    ----------
    depth:
        Total depth L; layers per block is ``(L - 4) / 3`` (halved again if
        ``bottleneck``).
    growth:
        Growth rate k: feature maps added per dense layer.
    bottleneck:
        Use DenseNet-B bottleneck layers.
    reduction:
        Transition compression θ (DenseNet-C uses 0.5; 1.0 = no compression).
    """

    def __init__(
        self,
        depth: int = 40,
        growth: int = 24,
        num_classes: int = 10,
        in_channels: int = 3,
        bottleneck: bool = False,
        reduction: float = 1.0,
    ):
        super().__init__()
        if (depth - 4) % 3 != 0:
            raise ValueError(f"DenseNet depth must be 3n+4, got {depth}")
        per_block = (depth - 4) // 3
        if bottleneck:
            if per_block % 2 != 0:
                raise ValueError("bottleneck DenseNet needs (depth-4)/3 even")
            per_block //= 2
        self.depth = depth
        self.growth = growth

        ch = 2 * growth if bottleneck else 16
        self.stem = Conv2d(in_channels, ch, 3, padding=1, bias=False, init="he")
        blocks: list[Module] = []
        for block_idx in range(3):
            for _ in range(per_block):
                blocks.append(_DenseLayer(ch, growth, bottleneck))
                ch += growth
            if block_idx < 2:
                out_ch = max(1, int(ch * reduction))
                blocks.append(_Transition(ch, out_ch))
                ch = out_ch
        self.blocks = blocks
        self.bn_final = BatchNorm2d(ch)
        self.pool = GlobalAvgPool2d()
        self.fc = Linear(ch, num_classes)

    def forward(self, x: Tensor) -> Tensor:
        out = self.stem(x)
        for block in self.blocks:
            out = block(out)
        out = self.bn_final(out).relu()
        return self.fc(self.pool(out))


def densenet(
    depth: int,
    growth: int,
    num_classes: int = 10,
    in_channels: int = 3,
    bottleneck: bool = False,
    reduction: float = 1.0,
) -> DenseNet:
    """Construct a DenseNet with the given hyperparameters."""
    return DenseNet(depth, growth, num_classes, in_channels, bottleneck, reduction)


def densenet_2_7m(num_classes: int = 10) -> DenseNet:
    """DenseNet L=40 k=20: ~2.7M parameters, the paper's baseline size."""
    return densenet(40, 20, num_classes=num_classes)


def densenet_bc_100_12(num_classes: int = 10) -> DenseNet:
    """DenseNet-BC L=100 k=12 (the standard compact CIFAR config, ~0.8M)."""
    return densenet(100, 12, num_classes=num_classes, bottleneck=True, reduction=0.5)


def densenet_tiny(num_classes: int = 10, in_channels: int = 3) -> DenseNet:
    """CPU-scale DenseNet used by the bench harness (L=16, k=8)."""
    return densenet(16, 8, num_classes=num_classes, in_channels=in_channels)
