"""Shared utilities (report formatting)."""

from repro.utils.reporting import ascii_series, format_percent, format_ratio, format_table

__all__ = ["format_table", "format_percent", "format_ratio", "ascii_series"]
