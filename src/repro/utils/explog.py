"""Experiment logging: append-only JSONL run records.

The bench harness and examples print human tables; this logger persists
machine-readable records so runs can be aggregated later (the EXPERIMENTS.md
paper-vs-measured index is assembled from these).

Each record is one JSON object per line with a standard envelope
(experiment, config, metrics, monotonic sequence number); readers get the
records back as dictionaries.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator

__all__ = ["ExperimentLogger", "read_log"]


class ExperimentLogger:
    """Append experiment records to a JSONL file.

    Parameters
    ----------
    path:
        Target file; parent directories are created.
    experiment:
        Experiment name stamped on every record (e.g. ``"table1"``).
    """

    def __init__(self, path: str, experiment: str):
        if not experiment:
            raise ValueError("experiment name must be non-empty")
        self.path = str(path)
        self.experiment = experiment
        self._seq = 0
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)

    def log(self, config: dict[str, Any], metrics: dict[str, Any]) -> dict[str, Any]:
        """Append one record; returns the full record written."""
        record = {
            "experiment": self.experiment,
            "seq": self._seq,
            "config": _jsonable(config),
            "metrics": _jsonable(metrics),
        }
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
        self._seq += 1
        return record


def _jsonable(obj: Any) -> Any:
    """Coerce numpy scalars/arrays into JSON-serializable structures."""
    import numpy as np

    if isinstance(obj, dict):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, np.ndarray):
        return obj.tolist()
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if isinstance(obj, (str, int, float, bool)) or obj is None:
        return obj
    return str(obj)


def read_log(path: str, experiment: str | None = None) -> list[dict[str, Any]]:
    """Read all records from a JSONL log, optionally filtered by experiment."""
    records: list[dict[str, Any]] = []
    with open(path, encoding="utf-8") as fh:
        for line_no, line in enumerate(fh):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"corrupt log line {line_no} in {path}: {exc}") from exc
            if experiment is None or rec.get("experiment") == experiment:
                records.append(rec)
    return records


def iter_metrics(path: str, experiment: str, key: str) -> Iterator[Any]:
    """Yield one metric value per record of an experiment."""
    for rec in read_log(path, experiment):
        if key in rec["metrics"]:
            yield rec["metrics"][key]
