"""Determinism helpers: stable digests of model state.

Everything in this reproduction is deterministic given its seeds — the
xorshift initialization, the data generators, the shuffle order, even the
dropout masks.  :func:`weights_digest` turns a model's full parameter state
into a short stable hash so tests can pin golden values and catch any
change to initialization or training numerics, and experiment logs can
record exactly which weights produced a number.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.nn import Module

__all__ = ["weights_digest", "array_digest"]


def array_digest(arr: np.ndarray) -> str:
    """Hex digest of an array's dtype, shape, and exact bytes."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.sha256()
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.hexdigest()


def weights_digest(model: Module, include_buffers: bool = True) -> str:
    """Hex digest of all parameters (and, optionally, buffers) of a model.

    Parameters are folded in named order, so two models agree iff their
    architectures and every stored value agree bit-for-bit.
    """
    h = hashlib.sha256()
    for name, p in model.named_parameters():
        h.update(name.encode())
        h.update(array_digest(p.data).encode())
    if include_buffers:
        for mod_name, buf_name, buf in model._named_buffers():
            h.update(f"{mod_name}{buf_name}".encode())
            h.update(array_digest(buf).encode())
    return h.hexdigest()
