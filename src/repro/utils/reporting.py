"""Plain-text report formatting for the benchmark harness.

The benches print the paper's tables side by side with measured values;
these helpers keep the formatting consistent and dependency-free.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_percent", "format_ratio", "ascii_series"]


def format_percent(fraction: float, digits: int = 2) -> str:
    """Render 0.0142 as ``1.42%``."""
    return f"{100.0 * fraction:.{digits}f}%"


def format_ratio(ratio: float, digits: int = 1) -> str:
    """Render 13.333 as ``13.3x``."""
    if ratio == float("inf"):
        return "inf"
    return f"{ratio:.{digits}f}x"


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Left-padded monospace table with a header rule."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for r, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def ascii_series(values: Sequence[float], width: int = 60, height: int = 12,
                 label: str = "") -> str:
    """Tiny ASCII line chart for printing figure series in bench output."""
    vals = list(values)
    if not vals:
        return "(empty series)"
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    # Downsample/stretch to the target width.
    idx = [
        int(i * (len(vals) - 1) / max(width - 1, 1))
        for i in range(min(width, max(len(vals), 1)))
    ]
    cols = [vals[i] for i in idx]
    grid = [[" "] * len(cols) for _ in range(height)]
    for x, v in enumerate(cols):
        y = int(round((v - lo) / span * (height - 1)))
        grid[height - 1 - y][x] = "*"
    out = []
    if label:
        out.append(label)
    out.append(f"{hi:.4g}".rjust(10))
    out.extend("".join(row) for row in grid)
    out.append(f"{lo:.4g}".rjust(10))
    return "\n".join(out)
