"""Model serialization, including DropBack's sparse checkpoint format.

A DropBack-trained network needs to persist only:

* the global **seed** (every untracked weight regenerates from it),
* the **tracked set**: flat indices + trained values (k entries),
* BatchNorm running statistics (training statistics, not weights).

Everything else is recomputed on load.  This is the storage story behind
the paper's "weight compression" column: a 25x-compressed LeNet checkpoint
really is ~25x smaller than the dense one.

:func:`save_sparse` / :func:`load_sparse` implement that format on top of
``numpy.savez``; :func:`save_dense` / :func:`load_dense` store the full
state for baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core import DropBack
from repro.nn import Module

__all__ = [
    "save_dense",
    "load_dense",
    "save_sparse",
    "load_sparse",
    "read_sparse_payload",
    "apply_sparse_payload",
    "SparsePayload",
    "sparse_size_bytes",
    "dense_size_bytes",
    "compression_report",
]

_FORMAT_VERSION = 1


@dataclass
class SparsePayload:
    """In-memory content of a sparse (or quantized-sparse) checkpoint.

    This is the wire format decoded once: everything a serving layer needs
    to materialize the full weight plane on demand — seed, tracked
    indices/values (already dequantized for the quantized format), and the
    BatchNorm running statistics.  ``kind`` is ``"sparse"`` or
    ``"quantized"``; ``bits`` is set only for the latter.
    """

    seed: int
    indices: np.ndarray
    values: np.ndarray
    zero_untracked: bool = False
    buffers: dict[str, np.ndarray] = field(default_factory=dict)
    kind: str = "sparse"
    bits: int | None = None

    @property
    def k(self) -> int:
        return int(self.indices.size)

    @property
    def nbytes(self) -> int:
        """Bytes this decoded payload pins in memory (indices + values + buffers)."""
        return int(
            self.indices.nbytes
            + self.values.nbytes
            + sum(b.nbytes for b in self.buffers.values())
        )


def read_sparse_payload(path: str) -> SparsePayload:
    """Decode a sparse or quantized-sparse checkpoint into a payload.

    Accepts both on-disk formats (:func:`save_sparse` and
    :func:`~repro.io.quantized.save_sparse_quantized`); quantized values
    come back dequantized to float32.  Dense checkpoints are rejected —
    they carry no (seed, tracked set) pair to regenerate from.
    """
    with np.load(path) as data:
        if "__qformat__" in data.files:
            from repro.quant import UniformQuantizer

            version = int(data["__qformat__"])
            if version != _FORMAT_VERSION:
                raise ValueError(f"unsupported quantized checkpoint version: {version}")
            bits = int(data["bits"])
            quant = UniformQuantizer(bits=bits)
            values = quant.dequantize(data["q_values"], float(data["scale"]))
            payload = SparsePayload(
                seed=int(data["seed"]),
                indices=np.asarray(data["indices"], dtype=np.int64),
                values=np.asarray(values, dtype=np.float32),
                kind="quantized",
                bits=bits,
            )
        elif "__format__" in data.files:
            version = int(data["__format__"])
            if version == 0:
                raise ValueError(
                    "dense checkpoint: no (seed, tracked set) to regenerate from; "
                    "use load_dense"
                )
            if version != _FORMAT_VERSION:
                raise ValueError(f"unsupported sparse checkpoint version: {version}")
            payload = SparsePayload(
                seed=int(data["seed"]),
                indices=np.asarray(data["indices"], dtype=np.int64),
                values=np.asarray(data["values"], dtype=np.float32),
                zero_untracked=bool(int(data["zero_untracked"])),
            )
        else:
            raise ValueError(f"not a repro checkpoint: {path}")
        payload.buffers = {
            key[len("buffer::"):]: np.array(data[key])
            for key in data.files
            if key.startswith("buffer::")
        }
    return payload


def save_dense(model: Module, path: str) -> None:
    """Save all parameters and buffers densely."""
    state = model.state_dict()
    np.savez(path, __format__=np.int64(0), **state)


def load_dense(model: Module, path: str) -> Module:
    """Load a dense checkpoint into a compatible model."""
    with np.load(path) as data:
        state = {k: data[k] for k in data.files if k != "__format__"}
    model.load_state_dict(state)
    return model


def save_sparse(model: Module, optimizer: DropBack, path: str) -> None:
    """Save seed + tracked (index, value) pairs + BN buffers.

    Parameters
    ----------
    model:
        The trained, finalized model.
    optimizer:
        The DropBack optimizer that trained it (owns the tracked mask).
    path:
        Output ``.npz`` path.
    """
    mask = optimizer.tracked_mask
    if mask is None:
        raise RuntimeError("optimizer has no tracked set; train at least one step")
    if optimizer._fixed:
        raise ValueError(
            "sparse checkpoints require include_nonprunable=True (the flat index "
            "space must cover every parameter)"
        )

    # Collect tracked values in the optimizer's flat prunable index space.
    flat = np.concatenate([p.data.reshape(-1) for _, p in optimizer._prunable])
    indices = np.flatnonzero(mask).astype(np.int64)
    values = flat[indices].astype(np.float32)

    payload: dict[str, np.ndarray] = {
        "__format__": np.int64(_FORMAT_VERSION),
        "seed": np.int64(model.seed),
        "k": np.int64(optimizer.k),
        "zero_untracked": np.int64(int(optimizer.zero_untracked)),
        "indices": indices,
        "values": values,
    }
    # Buffers (BatchNorm running stats) are statistics and stored densely.
    for mod_name, buf_name, buf in model._named_buffers():
        payload[f"buffer::{mod_name}{buf_name}"] = buf
    np.savez(path, **payload)


def load_sparse(model: Module, path: str) -> Module:
    """Reconstruct a DropBack-trained model from a sparse checkpoint.

    The model must be the same architecture; it is re-finalized with the
    stored seed (regenerating all initial values), untracked weights keep
    those values (or zero, if the run used the zeroing ablation), and the
    tracked values are scattered back in.
    """
    payload = read_sparse_payload(path)
    if payload.kind != "sparse":
        raise ValueError(
            f"{payload.kind} checkpoint; use load_sparse_quantized (or read_sparse_payload)"
        )
    return apply_sparse_payload(model, payload)


def apply_sparse_payload(model: Module, payload: SparsePayload) -> Module:
    """Materialize a decoded payload into a model (finalize + scatter)."""
    model.finalize(payload.seed)
    _scatter_tracked(model, payload.indices, payload.values, payload.zero_untracked)
    for dotted, arr in payload.buffers.items():
        model._set_buffer(dotted, arr)
    return model


def _scatter_tracked(
    model: Module, indices: np.ndarray, values: np.ndarray, zero_untracked: bool
) -> None:
    """Write tracked ``values`` at flat ``indices`` into a finalized model.

    The checkpoint's flat index space is exactly the model's weight-plane
    layout, so when every parameter is still plane-backed the whole load is
    one vectorized scatter through the plane (the views see it instantly —
    no per-parameter copies).  Falls back to the per-parameter
    concatenate/scatter path if any view was detached.
    """
    params = model.parameters()
    total = sum(p.size for p in params)
    if indices.size and indices.max() >= total:
        raise ValueError("checkpoint indices exceed model parameter count")
    plane = model.weight_plane
    if plane is not None and plane.size == total and all(p.plane_backed for p in params):
        if zero_untracked:
            plane.fill(0.0)
        plane[indices] = values
        return
    if zero_untracked:
        for p in params:
            p.data = np.zeros_like(p.data)
    flat = np.concatenate([p.data.reshape(-1) for p in params])
    flat[indices] = values
    offset = 0
    for p in params:
        p.data = flat[offset : offset + p.size].reshape(p.shape).astype(np.float32)
        offset += p.size


def sparse_size_bytes(optimizer: DropBack) -> int:
    """Idealized sparse checkpoint payload: k x (int32 index + float32 value)."""
    n = int(min(optimizer.k, optimizer.total_prunable))
    return n * (4 + 4) + 8  # + seed


def dense_size_bytes(model: Module) -> int:
    """Idealized dense checkpoint payload: one float32 per parameter."""
    return model.num_parameters() * 4


def compression_report(model: Module, optimizer: DropBack) -> dict[str, float]:
    """Storage comparison between dense and sparse formats."""
    dense = dense_size_bytes(model)
    sparse = sparse_size_bytes(optimizer)
    return {
        "dense_bytes": float(dense),
        "sparse_bytes": float(sparse),
        "byte_ratio": dense / sparse,
        "weight_compression": optimizer.compression_ratio,
    }
