"""Checkpoint serialization (dense and DropBack-sparse formats)."""

from repro.io.checkpoint import (
    SparsePayload,
    apply_sparse_payload,
    compression_report,
    dense_size_bytes,
    load_dense,
    load_sparse,
    read_sparse_payload,
    save_dense,
    save_sparse,
    sparse_size_bytes,
)
from repro.io.quantized import load_sparse_quantized, save_sparse_quantized

__all__ = [
    "save_sparse_quantized",
    "load_sparse_quantized",
    "SparsePayload",
    "read_sparse_payload",
    "apply_sparse_payload",
    "save_dense",
    "load_dense",
    "save_sparse",
    "load_sparse",
    "sparse_size_bytes",
    "dense_size_bytes",
    "compression_report",
]
