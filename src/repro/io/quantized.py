"""Quantized sparse checkpoints: count x precision compression on disk.

Combines the sparse format (seed + tracked indices/values) with uniform
quantization of the tracked values: indices stay int32, values become
``bits``-bit integers plus one float scale per parameter-free tensor.  The
paper's Section 5 composition claim, realized at the storage layer.
"""

from __future__ import annotations

import numpy as np

from repro.core import DropBack
from repro.io.checkpoint import apply_sparse_payload, read_sparse_payload
from repro.nn import Module
from repro.quant import UniformQuantizer

__all__ = ["save_sparse_quantized", "load_sparse_quantized"]

_FORMAT_VERSION = 1


def save_sparse_quantized(model: Module, optimizer: DropBack, path: str, bits: int = 8) -> None:
    """Save seed + tracked indices + ``bits``-bit quantized tracked values."""
    mask = optimizer.tracked_mask
    if mask is None:
        raise RuntimeError("optimizer has no tracked set; train at least one step")
    if optimizer._fixed:
        raise ValueError("quantized sparse checkpoints require include_nonprunable=True")

    flat = np.concatenate([p.data.reshape(-1) for _, p in optimizer._prunable])
    indices = np.flatnonzero(mask).astype(np.int64)
    values = flat[indices].astype(np.float32)
    quant = UniformQuantizer(bits=bits, stochastic=False)
    q_values, scale = quant.quantize(values)
    store_dtype = np.int8 if bits <= 8 else np.int16

    payload: dict[str, np.ndarray] = {
        "__qformat__": np.int64(_FORMAT_VERSION),
        "seed": np.int64(model.seed),
        "bits": np.int64(bits),
        "scale": np.float64(scale),
        "indices": indices,
        "q_values": q_values.astype(store_dtype),
    }
    for mod_name, buf_name, buf in model._named_buffers():
        payload[f"buffer::{mod_name}{buf_name}"] = buf
    np.savez(path, **payload)


def load_sparse_quantized(model: Module, path: str) -> Module:
    """Reconstruct a model from a quantized sparse checkpoint.

    Untracked weights regenerate exactly; tracked values come back at the
    stored precision (dequantized).
    """
    payload = read_sparse_payload(path)
    if payload.kind != "quantized":
        raise ValueError(f"{payload.kind} checkpoint; use load_sparse")
    return apply_sparse_payload(model, payload)
