"""Uniform quantization of weight tensors.

The paper's related-work section points out that quantization is orthogonal
to DropBack and "the two techniques can be combined": DropBack shrinks the
*number* of stored weights, quantization shrinks the *bits per weight*.
This module provides the quantizers; :mod:`repro.quant.qat` applies them
during training.

Two rounding modes:

* deterministic (round-to-nearest) — used post-training;
* stochastic (Gupta et al., 2015) — used during training so that the
  expected quantized value equals the real value, which keeps SGD unbiased
  at low precision.
"""

from __future__ import annotations

import numpy as np

__all__ = ["UniformQuantizer", "quantize_model", "quantization_error"]


class UniformQuantizer:
    """Symmetric uniform quantizer with a power-of-two-free scale.

    Values are mapped to ``bits``-bit signed integers in
    ``[-2^(b-1)+1, 2^(b-1)-1]`` with scale chosen per tensor from its max
    absolute value.

    Parameters
    ----------
    bits:
        Bit width (2-16).
    stochastic:
        Use stochastic rounding (unbiased; for training).
    seed:
        Seed for the stochastic-rounding generator.
    """

    def __init__(self, bits: int = 8, stochastic: bool = False, seed: int = 0):
        if not 2 <= bits <= 16:
            raise ValueError(f"bits must be in [2, 16], got {bits}")
        self.bits = int(bits)
        self.stochastic = bool(stochastic)
        self.qmax = 2 ** (bits - 1) - 1
        self._rng = np.random.default_rng(seed)

    def scale_for(self, values: np.ndarray) -> float:
        """Per-tensor scale mapping the max magnitude onto the int range."""
        m = float(np.abs(values).max()) if values.size else 0.0
        if m <= 0:
            return 1.0
        scale = m / self.qmax
        # denormal m can underflow the division to exactly 0.0, which would
        # turn values/scale into nan/inf and overflow the int32 cast
        return scale if scale > 0 else float(np.finfo(np.float64).tiny)

    def quantize(self, values: np.ndarray, scale: float | None = None) -> tuple[np.ndarray, float]:
        """Quantize to integers; returns ``(int_values, scale)``."""
        values = np.asarray(values, dtype=np.float64)
        scale = self.scale_for(values) if scale is None else float(scale)
        x = values / scale
        if self.stochastic:
            floor = np.floor(x)
            frac = x - floor
            q = floor + (self._rng.random(x.shape) < frac)
        else:
            q = np.round(x)
        q = np.clip(q, -self.qmax, self.qmax)
        return q.astype(np.int32), scale

    def dequantize(self, q: np.ndarray, scale: float) -> np.ndarray:
        """Map integers back to float32 values."""
        return (np.asarray(q, dtype=np.float64) * scale).astype(np.float32)

    def roundtrip(self, values: np.ndarray) -> np.ndarray:
        """Quantize-dequantize in one call (the storage-precision view)."""
        q, scale = self.quantize(values)
        return self.dequantize(q, scale)

    def __repr__(self) -> str:
        mode = "stochastic" if self.stochastic else "nearest"
        return f"UniformQuantizer(bits={self.bits}, {mode})"


def quantize_model(model, bits: int = 8) -> dict[str, float]:
    """Post-training quantization: snap every parameter to ``bits`` bits.

    Mutates the model in place (weights become dequantized low-precision
    values).  Returns the per-parameter scales.
    """
    quant = UniformQuantizer(bits=bits, stochastic=False)
    scales: dict[str, float] = {}
    for name, p in model.named_parameters():
        q, scale = quant.quantize(p.data)
        p.data = quant.dequantize(q, scale)
        scales[name] = scale
    return scales


def quantization_error(values: np.ndarray, bits: int) -> float:
    """RMS error introduced by quantizing ``values`` to ``bits`` bits."""
    quant = UniformQuantizer(bits=bits)
    back = quant.roundtrip(values)
    return float(np.sqrt(np.mean((np.asarray(values, np.float64) - back) ** 2)))
