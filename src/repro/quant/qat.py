"""Quantized training: combining DropBack with low-precision storage.

The paper (Section 5) notes DropBack composes with training-time
quantization à la Gupta et al. (2015): the k *tracked* weights are the only
stored state, so storing them at reduced precision multiplies the
compression — total storage shrinks by ``compression_ratio x (32 / bits)``.

:class:`QuantizedDropBack` quantizes the tracked values with stochastic
rounding after every DropBack step; untracked weights are exact by
construction (they are regenerated, never stored).  :class:`QuantizedSGD`
is the dense counterpart for comparison.
"""

from __future__ import annotations

import numpy as np

from repro.core.dropback import DropBack
from repro.nn import Module
from repro.optim.sgd import SGD
from repro.quant.quantizer import UniformQuantizer

__all__ = ["QuantizedDropBack", "QuantizedSGD"]


class QuantizedDropBack(DropBack):
    """DropBack whose tracked weights live at ``bits``-bit precision.

    After each step, every parameter is snapped to the quantization grid;
    untracked entries then get re-regenerated exactly (full precision comes
    for free from the PRNG, one of the regeneration path's perks).

    Parameters
    ----------
    bits:
        Storage precision of tracked weights.
    (remaining parameters as for :class:`~repro.core.DropBack`)
    """

    def __init__(self, model: Module, k: int, lr: float, bits: int = 8, **kwargs):
        super().__init__(model, k, lr, **kwargs)
        self.bits = int(bits)
        self._quant = UniformQuantizer(bits=bits, stochastic=True, seed=model.seed)

    def step(self) -> None:
        super().step()
        # Quantize stored (tracked) values; restore untracked to exact W(0).
        mask = self._mask_flat
        for (lo, hi), ref, (_, p) in zip(
            zip(self._offsets[:-1], self._offsets[1:]), self._reference, self._prunable
        ):
            snapped = self._quant.roundtrip(p.data)
            m = mask[lo:hi].reshape(p.shape)
            p.data = np.where(m, snapped, ref).astype(p.data.dtype)

    def storage_bits(self) -> int:
        """Total persistent weight storage in bits (values only)."""
        return self.storage_floats() * self.bits

    @property
    def total_compression(self) -> float:
        """Combined count x precision compression vs dense float32."""
        return self.compression_ratio * (32.0 / self.bits)


class QuantizedSGD(SGD):
    """Dense SGD with weights stored at ``bits``-bit precision.

    The Gupta et al. (2015) baseline: every weight is kept, but snapped to
    the quantization grid (stochastic rounding) after each update.
    """

    def __init__(self, model: Module, lr: float, bits: int = 8, **kwargs):
        super().__init__(model, lr, **kwargs)
        self.bits = int(bits)
        self._quant = UniformQuantizer(bits=bits, stochastic=True, seed=model.seed)

    def step(self) -> None:
        super().step()
        for p in self.params:
            p.data = self._quant.roundtrip(p.data)

    def storage_bits(self) -> int:
        return self.num_parameters * self.bits
