"""Quantization (orthogonal to DropBack; combinable, per paper Section 5)."""

from repro.quant.qat import QuantizedDropBack, QuantizedSGD
from repro.quant.quantizer import UniformQuantizer, quantization_error, quantize_model

__all__ = [
    "UniformQuantizer",
    "quantize_model",
    "quantization_error",
    "QuantizedDropBack",
    "QuantizedSGD",
]
