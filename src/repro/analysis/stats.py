"""Multi-seed statistics for experiment results.

The paper reports single-run numbers; a reproduction should quantify run-to
-run variance.  :func:`seed_sweep` repeats a run function across seeds and
:class:`SeedStats` summarizes the resulting metric (mean, std, min, max,
and a normal-approximation confidence interval).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

__all__ = ["SeedStats", "seed_sweep", "summarize"]


@dataclass(frozen=True)
class SeedStats:
    """Summary of one metric across seeds."""

    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        """Sample standard deviation (ddof=1; 0 for a single run)."""
        if self.n < 2:
            return 0.0
        return float(np.std(self.values, ddof=1))

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation CI for the mean (z=1.96 ~ 95%)."""
        half = z * self.std / math.sqrt(self.n) if self.n > 1 else 0.0
        return (self.mean - half, self.mean + half)

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.std:.4f} (n={self.n})"


def seed_sweep(run: Callable[[int], float], seeds: Sequence[int]) -> SeedStats:
    """Run ``run(seed)`` for each seed and collect the scalar results."""
    if not seeds:
        raise ValueError("seeds must be non-empty")
    values = []
    for seed in seeds:
        v = float(run(int(seed)))
        if not math.isfinite(v):
            raise ValueError(f"run(seed={seed}) returned non-finite value {v}")
        values.append(v)
    return SeedStats(tuple(values))


def summarize(stats_by_name: dict[str, SeedStats]) -> str:
    """Multi-line text summary of several metrics."""
    width = max((len(k) for k in stats_by_name), default=0)
    return "\n".join(f"{k.ljust(width)}  {v}" for k, v in stats_by_name.items())
