"""Analysis tooling behind the paper's figures and tables."""

from repro.analysis.diffusion import DiffusionTracker, l2_distance, log_diffusion_fit
from repro.analysis.flops import LayerFlops, count_flops, regen_overhead_ratio
from repro.analysis.gradients import (
    TopKChurnTracker,
    accumulated_gradients,
    gradient_density,
)
from repro.analysis.overlap import (
    expected_random_overlap,
    jaccard,
    nested_budget_overlap,
    overlap_coefficient,
)
from repro.analysis.pca import PCA, project_trajectories, trajectory_divergence
from repro.analysis.retention import LayerRetention, layer_retention_table
from repro.analysis.stats import SeedStats, seed_sweep, summarize
from repro.analysis.sweep import SweepPoint, compression_sweep, find_knee

__all__ = [
    "DiffusionTracker",
    "l2_distance",
    "log_diffusion_fit",
    "accumulated_gradients",
    "gradient_density",
    "TopKChurnTracker",
    "PCA",
    "project_trajectories",
    "trajectory_divergence",
    "LayerRetention",
    "layer_retention_table",
    "SweepPoint",
    "compression_sweep",
    "find_knee",
    "LayerFlops",
    "count_flops",
    "regen_overhead_ratio",
    "SeedStats",
    "seed_sweep",
    "summarize",
    "jaccard",
    "overlap_coefficient",
    "expected_random_overlap",
    "nested_budget_overlap",
]
