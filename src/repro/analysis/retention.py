"""Per-layer retained-weight analysis (paper Table 2).

Table 2 reports, for MNIST-100-100 trained under DropBack, how many of the
tracked weights end up in each layer, and the resulting per-layer
compression — showing that at tiny budgets proportionally more weights are
allocated to the later (decision-making) layers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import DropBack
from repro.nn import Module

__all__ = ["LayerRetention", "layer_retention_table"]


@dataclass
class LayerRetention:
    """Retention record for one layer."""

    layer: str
    baseline_params: int
    retained: int

    @property
    def compression(self) -> float:
        """Per-layer compression ratio (baseline / retained)."""
        return self.baseline_params / self.retained if self.retained else float("inf")


def layer_retention_table(model: Module, optimizer: DropBack) -> list[LayerRetention]:
    """Build Table 2's rows: per-layer baseline size, retained count, ratio.

    Layers are the dotted module prefixes (e.g. ``layers.1``) aggregating a
    weight matrix and its bias, matching the paper's fc1/fc2/fc3 rows.
    """
    retained = optimizer.tracked_counts_by_layer()
    sizes: dict[str, int] = {}
    for name, p in model.named_parameters():
        layer = name.rsplit(".", 1)[0] if "." in name else name
        sizes[layer] = sizes.get(layer, 0) + p.size
    rows = [
        LayerRetention(layer=layer, baseline_params=sizes.get(layer, 0), retained=count)
        for layer, count in retained.items()
    ]
    rows.append(
        LayerRetention(
            layer="Total",
            baseline_params=sum(r.baseline_params for r in rows),
            retained=sum(r.retained for r in rows),
        )
    )
    return rows
