"""PCA projection of weight-space trajectories (paper Figure 6).

The paper visualizes how each training regime moves through weight space by
projecting the sequence of weight snapshots onto the top principal
components: DropBack's trajectory stays close to the baseline's, while
magnitude pruning and variational dropout diverge.

No sklearn is available, so PCA is implemented directly.  For trajectory
matrices (a few hundred snapshots x possibly millions of weights) the
economical route is the Gram-matrix eigendecomposition: with ``X`` centered
``(n, d)`` and ``n << d``, eigenvectors of ``X Xᵀ / n`` give the projection
without forming the ``d x d`` covariance.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PCA", "project_trajectories", "trajectory_divergence"]


class PCA:
    """Principal component analysis via the Gram-matrix trick.

    Parameters
    ----------
    n_components:
        Number of leading components to keep.
    """

    def __init__(self, n_components: int = 3):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = int(n_components)
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None  # (k, d)
        self.explained_variance_: np.ndarray | None = None

    def fit(self, X: np.ndarray) -> "PCA":
        """Fit on rows of ``X`` (n_samples, n_features)."""
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError(f"X must be 2-D, got shape {X.shape}")
        n, d = X.shape
        k = min(self.n_components, n, d)
        self.mean_ = X.mean(axis=0)
        Xc = X - self.mean_
        if n <= d:
            # Gram trick: eigvecs of (n, n) matrix, lift back to feature space.
            gram = Xc @ Xc.T
            vals, vecs = np.linalg.eigh(gram)
            order = np.argsort(vals)[::-1][:k]
            vals = np.maximum(vals[order], 0.0)
            vecs = vecs[:, order]
            # components = Xcᵀ v / sqrt(λ); guard zero eigenvalues.
            scale = np.sqrt(np.maximum(vals, 1e-30))
            comps = (Xc.T @ vecs) / scale
            self.components_ = comps.T
            self.explained_variance_ = vals / max(n - 1, 1)
        else:
            cov = (Xc.T @ Xc) / max(n - 1, 1)
            vals, vecs = np.linalg.eigh(cov)
            order = np.argsort(vals)[::-1][:k]
            self.components_ = vecs[:, order].T
            self.explained_variance_ = np.maximum(vals[order], 0.0)
        return self

    def transform(self, X: np.ndarray) -> np.ndarray:
        """Project rows of ``X`` onto the fitted components."""
        if self.components_ is None:
            raise RuntimeError("PCA not fitted")
        return (np.asarray(X, dtype=np.float64) - self.mean_) @ self.components_.T

    def fit_transform(self, X: np.ndarray) -> np.ndarray:
        return self.fit(X).transform(X)


def project_trajectories(
    trajectories: dict[str, np.ndarray], n_components: int = 3
) -> dict[str, np.ndarray]:
    """Jointly project several weight trajectories into a common PCA space.

    Fits PCA on the union of all snapshots (as the paper does, so regimes
    are comparable in one coordinate frame), then projects each trajectory.

    Parameters
    ----------
    trajectories:
        Mapping ``regime_name -> (n_snapshots, n_weights)``; all regimes
        must share the weight dimensionality.

    Returns
    -------
    Mapping ``regime_name -> (n_snapshots, n_components)`` projections.
    """
    if not trajectories:
        raise ValueError("no trajectories given")
    dims = {v.shape[1] for v in trajectories.values()}
    if len(dims) != 1:
        raise ValueError(f"trajectories have mismatched weight dims: {sorted(dims)}")
    stacked = np.concatenate(list(trajectories.values()), axis=0)
    pca = PCA(n_components=n_components).fit(stacked)
    return {name: pca.transform(traj) for name, traj in trajectories.items()}


def trajectory_divergence(ref: np.ndarray, other: np.ndarray) -> float:
    """Mean distance between two projected trajectories' endpoints-aligned paths.

    Trajectories are compared at matching fractional positions (resampled by
    nearest index), so regimes trained for different step counts remain
    comparable.  The paper's qualitative claim — DropBack stays near the
    baseline path, magnitude pruning and VD do not — becomes a number.
    """
    ref = np.asarray(ref, dtype=np.float64)
    other = np.asarray(other, dtype=np.float64)
    n = min(len(ref), len(other))
    if n < 2:
        raise ValueError("trajectories need at least 2 points")
    ri = np.linspace(0, len(ref) - 1, n).round().astype(int)
    oi = np.linspace(0, len(other) - 1, n).round().astype(int)
    return float(np.linalg.norm(ref[ri] - other[oi], axis=1).mean())
