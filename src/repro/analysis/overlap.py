"""Tracked-set overlap analysis.

Figure 2 shows the tracked set stabilizes *within* a run; a natural
follow-on question is how consistent the selected set is *across* runs
(different seeds, different budgets).  High cross-seed overlap would mean
specific weights matter; in practice the overlap of independently
initialized runs is near-random — the budget matters, not the identity of
the weights — which is consistent with the paper's initialization-
scaffolding story.

:func:`jaccard` / :func:`overlap_coefficient` compare boolean masks;
:func:`expected_random_overlap` gives the chance baseline;
:func:`nested_budget_overlap` checks that a smaller budget's selection is
(mostly) contained in a larger one's on the *same* run.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "jaccard",
    "overlap_coefficient",
    "expected_random_overlap",
    "nested_budget_overlap",
]


def _check(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    a = np.asarray(a, dtype=bool)
    b = np.asarray(b, dtype=bool)
    if a.shape != b.shape:
        raise ValueError(f"mask shapes differ: {a.shape} vs {b.shape}")
    return a, b


def jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity |A ∩ B| / |A ∪ B| of two boolean masks."""
    a, b = _check(a, b)
    union = np.count_nonzero(a | b)
    if union == 0:
        return 1.0
    return np.count_nonzero(a & b) / union


def overlap_coefficient(a: np.ndarray, b: np.ndarray) -> float:
    """Szymkiewicz-Simpson overlap |A ∩ B| / min(|A|, |B|)."""
    a, b = _check(a, b)
    denom = min(np.count_nonzero(a), np.count_nonzero(b))
    if denom == 0:
        return 1.0
    return np.count_nonzero(a & b) / denom


def expected_random_overlap(n: int, k_a: int, k_b: int) -> float:
    """Expected |A ∩ B| / min(k) for two independent uniform k-subsets.

    For A of size k_a drawn uniformly from n elements and independent B of
    size k_b, E|A ∩ B| = k_a·k_b / n; normalized by min(k_a, k_b) this is
    the chance value :func:`overlap_coefficient` converges to.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if not (0 <= k_a <= n and 0 <= k_b <= n):
        raise ValueError("subset sizes must lie in [0, n]")
    if min(k_a, k_b) == 0:
        return 1.0
    return (k_a * k_b / n) / min(k_a, k_b)


def nested_budget_overlap(small_mask: np.ndarray, large_mask: np.ndarray) -> float:
    """Fraction of the smaller tracked set contained in the larger one.

    For the same run at two budgets k_small < k_large, a selection rule
    that ranks weights consistently gives values near 1.0.
    """
    small, large = _check(small_mask, large_mask)
    k_small = np.count_nonzero(small)
    if k_small == 0:
        return 1.0
    return np.count_nonzero(small & large) / k_small
