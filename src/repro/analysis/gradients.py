"""Accumulated-gradient statistics (paper Figures 1 and 2).

* Figure 1: the distribution of accumulated gradients after standard SGD
  training is sharply peaked at zero — most weights barely move from their
  initialization, motivating tracking only the top movers.
  :func:`accumulated_gradients` and :func:`gradient_density` reproduce it.

* Figure 2: the membership of the top-k accumulated-gradient set stabilizes
  after the first few mini-batches, justifying freezing.
  :class:`TopKChurnTracker` counts per-step swaps.
"""

from __future__ import annotations

import numpy as np

from repro.core.selection import top_k_mask
from repro.nn import Module
from repro.train.callbacks import Callback

__all__ = ["accumulated_gradients", "gradient_density", "TopKChurnTracker"]


def accumulated_gradients(model: Module, w0: np.ndarray | None = None) -> np.ndarray:
    """Flat vector of accumulated gradients ``w_t - w_0`` for all parameters.

    Since plain SGD applies ``w_t = w_0 - Σ lr·g``, the displacement from
    initialization *is* the (signed) accumulated gradient, which is what the
    paper's Figure 1 histograms.

    Parameters
    ----------
    model:
        Finalized, (partially) trained model.
    w0:
        Optional explicit initial flat weight vector; defaults to
        regenerating each parameter's initialization.
    """
    current = np.concatenate([p.data.reshape(-1) for p in model.parameters()])
    if w0 is None:
        seed = model.seed
        w0 = np.concatenate(
            [p.initial_values(seed).reshape(-1) for p in model.parameters()]
        )
    w0 = np.asarray(w0)
    if w0.shape != current.shape:
        raise ValueError(f"w0 shape {w0.shape} != current {current.shape}")
    return current - w0


def gradient_density(
    values: np.ndarray, grid: np.ndarray | None = None, bandwidth: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Gaussian kernel density estimate of a value distribution (Fig. 1).

    Returns ``(grid, density)``.  Bandwidth defaults to Scott's rule.  The
    KDE is evaluated with a vectorized kernel sum over a subsample when the
    input is very large.
    """
    values = np.asarray(values, dtype=np.float64).ravel()
    if values.size == 0:
        raise ValueError("empty value array")
    if values.size > 20000:
        rng = np.random.default_rng(0)
        values = rng.choice(values, size=20000, replace=False)
    n = values.size
    std = values.std() or 1e-12
    h = bandwidth if bandwidth is not None else 1.06 * std * n ** (-1 / 5)
    if grid is None:
        lo, hi = values.min() - 3 * h, values.max() + 3 * h
        grid = np.linspace(lo, hi, 512)
    z = (grid[:, None] - values[None, :]) / h
    dens = np.exp(-0.5 * z * z).sum(axis=1) / (n * h * np.sqrt(2 * np.pi))
    return grid, dens


class TopKChurnTracker(Callback):
    """Count per-step membership changes of the top-k accumulated-gradient set.

    Reproduces Figure 2 for *baseline SGD* training: at each step the top-k
    set of ``|w_t - w_0|`` is recomputed and the number of newly entered
    weights recorded.  (For DropBack itself the optimizer's
    ``swap_history`` gives the same series for free.)
    """

    def __init__(self, k: int):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = int(k)
        self.swaps: list[int] = []
        self._w0: np.ndarray | None = None
        self._prev_mask: np.ndarray | None = None

    def _flat(self, trainer) -> np.ndarray:
        return np.concatenate([p.data.reshape(-1) for p in trainer.model.parameters()])

    def on_train_begin(self, trainer) -> None:
        self._w0 = self._flat(trainer).astype(np.float64)

    def on_step_end(self, trainer, step: int, loss: float) -> None:
        scores = np.abs(self._flat(trainer).astype(np.float64) - self._w0)
        mask = top_k_mask(scores, self.k)
        if self._prev_mask is None:
            self.swaps.append(int(mask.sum()))
        else:
            self.swaps.append(int(np.count_nonzero(mask & ~self._prev_mask)))
        self._prev_mask = mask

    def series(self) -> np.ndarray:
        return np.asarray(self.swaps)
