"""Weight-diffusion analysis (paper Section 4, Figure 5).

Hoffer et al. (2017) observe that under SGD the l2 distance of the weights
from their initialization grows logarithmically — "ultra-slow diffusion" —
and that training regimes preserving this profile generalize well.  The
paper's explanation for DropBack's robustness is that its diffusion curve
hugs the unpruned baseline's, whereas magnitude pruning *starts* at a large
distance (zeroing init weights is itself a big jump) and variational
dropout diffuses much faster.

:class:`DiffusionTracker` is a training callback recording
``||w_t - w_0||_2`` on a log-spaced step grid;
:func:`log_diffusion_fit` quantifies the log-t growth rate.
"""

from __future__ import annotations

import numpy as np

from repro.train.callbacks import Callback

__all__ = ["DiffusionTracker", "l2_distance", "log_diffusion_fit"]


def l2_distance(w: np.ndarray, w0: np.ndarray) -> float:
    """Euclidean distance between two flat weight vectors."""
    return float(np.linalg.norm(np.asarray(w, dtype=np.float64) - np.asarray(w0, dtype=np.float64)))


class DiffusionTracker(Callback):
    """Record l2 diffusion distance from initialization during training.

    Parameters
    ----------
    log_spaced:
        Sample on a log step grid (paper's Fig. 5 uses log time).
    every:
        Linear sampling period when ``log_spaced=False``.
    """

    def __init__(self, log_spaced: bool = True, every: int = 1, growth: float = 1.25):
        self.log_spaced = bool(log_spaced)
        self.every = int(every)
        self.growth = float(growth)
        self.steps: list[int] = []
        self.distances: list[float] = []
        self._w0: np.ndarray | None = None
        self._next = 1

    def _flat(self, trainer) -> np.ndarray:
        return np.concatenate(
            [p.data.reshape(-1).astype(np.float64) for p in trainer.model.parameters()]
        )

    def on_train_begin(self, trainer) -> None:
        self._w0 = self._flat(trainer)
        self.steps.append(0)
        self.distances.append(0.0)

    def on_step_end(self, trainer, step: int, loss: float) -> None:
        t = step + 1
        due = (t >= self._next) if self.log_spaced else (t % self.every == 0)
        if not due:
            return
        self.distances.append(l2_distance(self._flat(trainer), self._w0))
        self.steps.append(t)
        if self.log_spaced:
            self._next = max(self._next + 1, int(self._next * self.growth))

    def series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(steps, l2_distances)`` arrays."""
        return np.asarray(self.steps), np.asarray(self.distances)


def log_diffusion_fit(steps: np.ndarray, distances: np.ndarray) -> tuple[float, float]:
    """Least-squares fit ``distance ≈ a·log(t) + b`` over steps >= 1.

    Returns ``(a, b)``; the slope ``a`` is the ultra-slow-diffusion rate used
    to compare training regimes quantitatively.
    """
    steps = np.asarray(steps, dtype=np.float64)
    distances = np.asarray(distances, dtype=np.float64)
    m = steps >= 1
    if m.sum() < 2:
        raise ValueError("need at least two samples with step >= 1")
    x = np.log(steps[m])
    a, b = np.polyfit(x, distances[m], 1)
    return float(a), float(b)
