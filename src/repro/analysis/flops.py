"""FLOP counting for the model zoo.

The paper's energy analysis treats arithmetic as common between dense and
DropBack training and focuses on weight traffic.  To put the regeneration
overhead in context — 7 ops per untracked weight per pass vs the network's
own arithmetic — this module counts multiply-accumulate FLOPs per forward
pass, per layer, for the layer types in :mod:`repro.nn`.

Counts follow the usual convention: one multiply-accumulate = 2 FLOPs;
batch size is excluded (counts are per example).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.nn import (
    AvgPool2d,
    BatchNorm1d,
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    Module,
    PReLU,
    ReLU,
    Sequential,
)
from repro.tensor import conv_out_size

__all__ = ["LayerFlops", "count_flops", "regen_overhead_ratio"]


@dataclass
class LayerFlops:
    """FLOPs and output shape of one layer application."""

    layer: str
    flops: int
    out_shape: tuple[int, ...]


def _seq_layers(model: Module):
    if isinstance(model, Sequential):
        return list(model)
    raise TypeError(
        "count_flops walks Sequential models; wrap custom modules or pass "
        "their Sequential body"
    )


def count_flops(model: Module, input_shape: tuple[int, ...]) -> list[LayerFlops]:
    """Per-layer forward FLOPs for a Sequential model.

    Parameters
    ----------
    model:
        A :class:`~repro.nn.Sequential` model.
    input_shape:
        Single-example input shape, e.g. ``(1, 28, 28)`` or ``(3, 32, 32)``.
    """
    shape = tuple(input_shape)
    out: list[LayerFlops] = []
    for layer in _seq_layers(model):
        if isinstance(layer, Conv2d):
            c, h, w = shape
            oh = conv_out_size(h, layer.kernel_size, layer.stride, layer.padding)
            ow = conv_out_size(w, layer.kernel_size, layer.stride, layer.padding)
            macs = layer.out_channels * oh * ow * c * layer.kernel_size**2
            flops = 2 * macs + (layer.out_channels * oh * ow if layer.bias is not None else 0)
            shape = (layer.out_channels, oh, ow)
        elif isinstance(layer, Linear):
            flops = 2 * layer.in_features * layer.out_features
            if layer.bias is not None:
                flops += layer.out_features
            shape = (layer.out_features,)
        elif isinstance(layer, (BatchNorm1d, BatchNorm2d)):
            n = _numel(shape)
            flops = 2 * n  # scale + shift per element (stats amortized)
        elif isinstance(layer, (ReLU, PReLU)):
            flops = _numel(shape)
        elif isinstance(layer, MaxPool2d):
            c, h, w = shape
            oh = conv_out_size(h, layer.kernel_size, layer.stride, 0)
            ow = conv_out_size(w, layer.kernel_size, layer.stride, 0)
            flops = c * oh * ow * layer.kernel_size**2
            shape = (c, oh, ow)
        elif isinstance(layer, AvgPool2d):
            c, h, w = shape
            oh = conv_out_size(h, layer.kernel_size, layer.stride, 0)
            ow = conv_out_size(w, layer.kernel_size, layer.stride, 0)
            flops = c * oh * ow * layer.kernel_size**2
            shape = (c, oh, ow)
        elif isinstance(layer, GlobalAvgPool2d):
            flops = _numel(shape)
            shape = (shape[0],)
        elif isinstance(layer, Flatten):
            flops = 0
            shape = (_numel(shape),)
        else:
            # Dropout/Identity-style layers are free at inference.
            flops = 0
        out.append(LayerFlops(layer=repr(layer), flops=flops, out_shape=shape))
    return out


def _numel(shape: tuple[int, ...]) -> int:
    n = 1
    for s in shape:
        n *= s
    return n


def regen_overhead_ratio(
    model: Module, input_shape: tuple[int, ...], k: int, ops_per_regen: int = 7
) -> float:
    """Regeneration ops per forward pass as a fraction of the network FLOPs.

    DropBack regenerates ``total - k`` weights per pass at 7 ops each; this
    returns that cost divided by the model's own forward FLOPs — typically
    well under 1 for conv nets, quantifying "the energy needed to compute
    the gradient is not significant" framing for the regeneration path.
    """
    total_flops = sum(lf.flops for lf in count_flops(model, input_shape))
    if total_flops == 0:
        raise ValueError("model has zero forward FLOPs")
    regen_ops = ops_per_regen * max(0, model.num_parameters() - k)
    return regen_ops / total_flops
