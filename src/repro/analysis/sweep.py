"""Compression-sweep utilities: error vs weight budget curves.

The paper's tables sample a few budgets per model; downstream users want
the whole tradeoff curve ("an attractive design point for low-power
embedded accelerators" — Section 3) plus the knee where accuracy starts to
fall.  :func:`compression_sweep` runs DropBack across a ratio grid and
:func:`find_knee` locates the largest compression whose error stays within
a tolerance of the best observed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core import DropBack
from repro.data import DataLoader, Dataset
from repro.optim import ConstantLR, Schedule
from repro.train import Trainer

__all__ = ["SweepPoint", "compression_sweep", "find_knee"]


@dataclass(frozen=True)
class SweepPoint:
    """One (compression, error) sample of the tradeoff curve."""

    compression: float
    k: int
    val_error: float
    best_epoch: int


def compression_sweep(
    model_factory: Callable,
    data: tuple[Dataset, Dataset],
    ratios: Sequence[float],
    epochs: int,
    lr: float = 0.4,
    seed: int = 42,
    batch_size: int = 64,
    schedule: Schedule | None = None,
) -> list[SweepPoint]:
    """Train DropBack at each compression ratio; return the curve.

    Every run reuses the same model seed and data order so the sweep
    isolates the budget as the only variable.
    """
    if not ratios:
        raise ValueError("ratios must be non-empty")
    if any(r < 1.0 for r in ratios):
        raise ValueError("compression ratios must be >= 1")
    train, test = data
    points: list[SweepPoint] = []
    for ratio in ratios:
        model = model_factory().finalize(seed)
        k = max(1, int(round(model.num_parameters() / ratio)))
        opt = DropBack(model, k=k, lr=lr)
        trainer = Trainer(model, opt, schedule=schedule or ConstantLR(lr))
        hist = trainer.fit(DataLoader(train, batch_size, seed=0), test, epochs=epochs)
        points.append(
            SweepPoint(
                compression=model.num_parameters() / k,
                k=k,
                val_error=hist.best_val_error,
                best_epoch=hist.best_epoch,
            )
        )
    return points


def find_knee(points: Sequence[SweepPoint], tolerance: float = 0.01) -> SweepPoint:
    """Largest-compression point whose error is within ``tolerance`` of the
    best error in the sweep.

    This is the "free compression" knee: beyond it, compression starts
    costing accuracy.
    """
    if not points:
        raise ValueError("empty sweep")
    best_error = min(p.val_error for p in points)
    eligible = [p for p in points if p.val_error <= best_error + tolerance]
    return max(eligible, key=lambda p: p.compression)
